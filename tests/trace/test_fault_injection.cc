/**
 * @file
 * Chaos suite for the fault-tolerant trace pipeline: every fault class
 * (bit flips, corrupt headers, truncation at every byte offset,
 * transient I/O failures, short reads, injected worker exceptions)
 * crossed with every read policy must either complete with exact
 * dropped-record accounting or fail with a structured error — never
 * crash, hang, or silently simulate corrupt data.
 */

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "trace/fault_injector.hh"
#include "trace/io.hh"

namespace cac
{
namespace
{

std::string
tmpPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

Trace
randomTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Trace t;
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord rec;
        rec.op = static_cast<OpClass>(rng.nextBelow(10));
        rec.dst = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.nextBelow(65)) - 1);
        rec.src1 = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.nextBelow(65)) - 1);
        rec.src2 = -1;
        rec.taken = rng.chance(0.5);
        rec.addr = rng.next();
        rec.pc = static_cast<std::uint32_t>(rng.nextBelow(1 << 20)) * 4;
        t.push_back(rec);
    }
    return t;
}

Trace
drain(TraceReader &reader)
{
    Trace all;
    while (true) {
        const std::vector<TraceRecord> &chunk = reader.next();
        if (chunk.empty())
            break;
        all.insert(all.end(), chunk.begin(), chunk.end());
    }
    return all;
}

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].op, b[i].op) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
    }
}

/** XOR one bit into the file at @p offset. */
void
flipBit(const std::string &path, long offset, int mask)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    const int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(byte ^ mask, f);
    std::fclose(f);
}

/** Byte offset of CACTRC02 chunk @p seq with @p c records per chunk. */
long
chunkOffset(std::uint64_t seq, std::uint64_t c)
{
    return static_cast<long>(24 + seq * (20 + c * 24));
}

TraceReaderOptions
withPolicy(ReadPolicy policy, std::size_t chunk = 100)
{
    TraceReaderOptions o;
    o.chunkRecords = chunk;
    o.policy = policy;
    return o;
}

// ---- payload corruption ----------------------------------------------

/**
 * The headline acceptance test: a single flipped payload bit in a
 * CACTRC02 file is DETECTED — strict fails with ChecksumMismatch at
 * the right chunk, skip/resync quarantine exactly that chunk with
 * exact drop totals. It is never silently replayed as data.
 */
TEST(FaultInjection, FlippedPayloadBitIsDetectedNotSimulated)
{
    const std::string path = tmpPath("cac_fi_flip.trc");
    const Trace original = randomTrace(1000, 21);
    writeTrace(original, path, TraceFormat::V2, 100);
    // One bit in the payload of chunk 3 (payload starts 20 bytes past
    // the chunk header).
    flipBit(path, chunkOffset(3, 100) + 20 + 57, 0x04);

    {
        TraceReader strict(path, withPolicy(ReadPolicy::Strict));
        const Trace got = drain(strict);
        EXPECT_FALSE(strict.ok());
        EXPECT_EQ(strict.errorInfo().code, ErrorCode::ChecksumMismatch);
        EXPECT_EQ(strict.errorInfo().chunkIndex, 3u);
        EXPECT_EQ(got.size(), 300u); // chunks 0..2 delivered intact
    }

    for (ReadPolicy policy : {ReadPolicy::Skip, ReadPolicy::Resync}) {
        TraceReader reader(path, withPolicy(policy));
        const Trace got = drain(reader);
        EXPECT_TRUE(reader.ok()) << reader.error();
        const ReadStats &st = reader.readStats();
        EXPECT_EQ(st.droppedRecords, 100u);
        EXPECT_EQ(st.droppedChunks, 1u);
        EXPECT_EQ(st.crcErrors, 1u);
        EXPECT_TRUE(st.degraded());
        ASSERT_EQ(got.size(), 900u);
        // Exact accounting: delivered + dropped == promised.
        EXPECT_EQ(reader.recordsRead() + st.droppedRecords,
                  reader.recordCount());
        // The surviving records are the original ones, bit for bit.
        Trace expect(original.begin(), original.begin() + 300);
        expect.insert(expect.end(), original.begin() + 400,
                      original.end());
        expectTracesEqual(got, expect);
    }
    std::remove(path.c_str());
}

TEST(FaultInjection, CorruptChunkHeaderSkipsOrResyncs)
{
    const std::string path = tmpPath("cac_fi_badchunk.trc");
    writeTrace(randomTrace(1000, 22), path, TraceFormat::V2, 100);
    // Break chunk 5's count field: its header CRC no longer matches.
    flipBit(path, chunkOffset(5, 100) + 8, 0x01);

    {
        TraceReader strict(path, withPolicy(ReadPolicy::Strict));
        drain(strict);
        EXPECT_FALSE(strict.ok());
        EXPECT_EQ(strict.errorInfo().code, ErrorCode::BadChunkHeader);
        EXPECT_EQ(strict.errorInfo().chunkIndex, 5u);
    }

    // Fixed chunking means skip can stride straight to chunk 6; resync
    // finds the same chunk by scanning. Either way exactly 100 records
    // are lost.
    for (ReadPolicy policy : {ReadPolicy::Skip, ReadPolicy::Resync}) {
        TraceReader reader(path, withPolicy(policy));
        const Trace got = drain(reader);
        EXPECT_TRUE(reader.ok()) << reader.error();
        EXPECT_EQ(got.size(), 900u);
        EXPECT_EQ(reader.readStats().droppedRecords, 100u);
        EXPECT_EQ(reader.readStats().droppedChunks, 1u);
    }
    std::remove(path.c_str());
}

TEST(FaultInjection, VerificationCanBeDisabled)
{
    // --no-verify replays a payload-corrupt file without complaint
    // (the perf harness measures this switch); structural checks on
    // the chunk headers still run.
    const std::string path = tmpPath("cac_fi_noverify.trc");
    writeTrace(randomTrace(500, 23), path, TraceFormat::V2, 100);
    flipBit(path, chunkOffset(1, 100) + 20 + 3, 0x80);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Strict);
    opts.verifyChecksums = false;
    TraceReader reader(path, opts);
    EXPECT_EQ(drain(reader).size(), 500u);
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_FALSE(reader.readStats().degraded());
    std::remove(path.c_str());
}

// ---- truncation matrix -----------------------------------------------

/**
 * Truncate a small trace at EVERY byte offset and read it back under
 * every policy: each combination must return cleanly (success with
 * drop accounting or a structured error), never crash — under
 * ASan/UBSan in the sanitizer CI lane this is the memory-safety sweep
 * of the whole decode path.
 */
TEST(FaultInjection, TruncationMatrixEveryByteOffsetBothFormats)
{
    const Trace original = randomTrace(40, 24);
    struct Variant
    {
        const char *name;
        TraceFormat format;
        std::size_t chunk;
    };
    for (const Variant &v :
         {Variant{"cac_fi_trunc_v1.trc", TraceFormat::V1, 16},
          Variant{"cac_fi_trunc_v2.trc", TraceFormat::V2, 16}}) {
        const std::string full = tmpPath(v.name);
        writeTrace(original, full, v.format, v.chunk);
        const std::uintmax_t size = std::filesystem::file_size(full);
        const std::string path = tmpPath("cac_fi_trunc_cut.trc");

        for (std::uintmax_t cut = 0; cut < size; ++cut) {
            std::filesystem::copy_file(
                full, path,
                std::filesystem::copy_options::overwrite_existing);
            std::filesystem::resize_file(path, cut);

            for (ReadPolicy policy :
                 {ReadPolicy::Strict, ReadPolicy::Skip,
                  ReadPolicy::Resync}) {
                Trace out;
                Error error;
                ReadStats stats;
                const bool ok = tryReadTrace(path, out, error,
                                             withPolicy(policy, 16),
                                             &stats);
                if (ok) {
                    // Whatever arrived plus the drop total must cover
                    // the promised count exactly.
                    EXPECT_EQ(out.size() + stats.droppedRecords, 40u)
                        << v.name << " cut=" << cut;
                } else {
                    EXPECT_NE(error.code, ErrorCode::None)
                        << v.name << " cut=" << cut;
                }
            }
        }
        std::remove(full.c_str());
        std::remove(path.c_str());
    }
}

// ---- injected storage faults -----------------------------------------

TEST(FaultInjection, TransientFailuresAreRetriedTransparently)
{
    const std::string path = tmpPath("cac_fi_transient.trc");
    const Trace original = randomTrace(2000, 25);
    writeTrace(original, path, TraceFormat::V2, 100);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Strict);
    FaultInjector::Spec spec;
    spec.seed = 7;
    spec.transientProb = 0.2;
    opts.inject = spec;

    TraceReader reader(path, opts);
    ASSERT_TRUE(reader.ok()) << reader.error();
    expectTracesEqual(drain(reader), original);
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_GT(reader.readStats().retries, 0u);
    EXPECT_GT(reader.injector()->counters().transients, 0u);
    EXPECT_FALSE(reader.readStats().degraded());
    std::remove(path.c_str());
}

TEST(FaultInjection, BurstWithinRetryBudgetRecovers)
{
    const std::string path = tmpPath("cac_fi_burst.trc");
    const Trace original = randomTrace(500, 26);
    writeTrace(original, path, TraceFormat::V2, 100);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Strict);
    FaultInjector::Spec spec;
    spec.seed = 3;
    spec.transientProb = 0.05;
    spec.transientBurst = 4; // < the reader's 5-retry budget
    opts.inject = spec;

    TraceReader reader(path, opts);
    expectTracesEqual(drain(reader), original);
    EXPECT_TRUE(reader.ok()) << reader.error();
    std::remove(path.c_str());
}

TEST(FaultInjection, PersistentFailureExhaustsRetriesWithReadFailed)
{
    const std::string path = tmpPath("cac_fi_persistent.trc");
    writeTrace(randomTrace(500, 27), path, TraceFormat::V2, 100);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Strict);
    FaultInjector::Spec spec;
    spec.transientProb = 1.0; // every read fails, forever
    spec.transientBurst = 1000;
    opts.inject = spec;

    // The very first header read exhausts the budget: the reader
    // parks in the failed state instead of spinning or crashing.
    TraceReader reader(path, opts);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.errorInfo().code, ErrorCode::ReadFailed);
    EXPECT_TRUE(reader.next().empty());
    std::remove(path.c_str());
}

TEST(FaultInjection, ShortReadsAreResumedTransparently)
{
    const std::string path = tmpPath("cac_fi_short.trc");
    const Trace original = randomTrace(2000, 28);
    writeTrace(original, path, TraceFormat::V2, 100);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Strict);
    FaultInjector::Spec spec;
    spec.seed = 9;
    spec.shortReadProb = 0.9;
    opts.inject = spec;

    TraceReader reader(path, opts);
    expectTracesEqual(drain(reader), original);
    EXPECT_TRUE(reader.ok()) << reader.error();
    EXPECT_GT(reader.injector()->counters().shortReads, 0u);
    std::remove(path.c_str());
}

TEST(FaultInjection, InjectedBitFlipsAreCaughtByChecksums)
{
    const std::string path = tmpPath("cac_fi_inflip.trc");
    writeTrace(randomTrace(5000, 29), path, TraceFormat::V2, 100);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Skip);
    FaultInjector::Spec spec;
    spec.seed = 5;
    spec.flipPerByte = 1e-4; // ~12 flipped bits over 120 KB
    opts.inject = spec;

    TraceReader reader(path, opts);
    const Trace got = drain(reader);
    EXPECT_TRUE(reader.ok()) << reader.error();
    const ReadStats &st = reader.readStats();
    EXPECT_GT(reader.injector()->counters().flippedBits, 0u);
    // Every flip lands in a counted drop; nothing is silently kept.
    EXPECT_TRUE(st.degraded());
    EXPECT_EQ(got.size() + st.droppedRecords, 5000u);
    std::remove(path.c_str());
}

TEST(FaultInjection, InjectedLatencyOnlySlowsTheRead)
{
    const std::string path = tmpPath("cac_fi_lat.trc");
    const Trace original = randomTrace(200, 30);
    writeTrace(original, path, TraceFormat::V2, 100);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Strict);
    FaultInjector::Spec spec;
    spec.latencyUs = 100;
    opts.inject = spec;

    TraceReader reader(path, opts);
    expectTracesEqual(drain(reader), original);
    EXPECT_TRUE(reader.ok()) << reader.error();
    std::remove(path.c_str());
}

// ---- worker exception containment ------------------------------------

TEST(FaultInjection, ForeignExceptionInPrefetchThreadIsContained)
{
    const std::string path = tmpPath("cac_fi_throw_pf.trc");
    writeTrace(randomTrace(2000, 31), path, TraceFormat::V2, 100);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Strict);
    opts.prefetch = Prefetch::On;
    FaultInjector::Spec spec;
    spec.throwAfterReads = 9; // mid-stream, inside the helper thread
    opts.inject = spec;

    TraceReader reader(path, opts);
    drain(reader);
    // The throw surfaces as a structured error on the consumer —
    // never std::terminate.
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.errorInfo().code, ErrorCode::WorkerFailed);
    EXPECT_NE(reader.error().find("injected"), std::string::npos)
        << reader.error();
    std::remove(path.c_str());
}

TEST(FaultInjection, DestructorJoinsAPoisonedPrefetchThread)
{
    // Regression for the prefetch-thread lifecycle: construct, let the
    // helper thread die on an injected exception, and destroy the
    // reader without ever calling next(). Must not hang or terminate.
    const std::string path = tmpPath("cac_fi_throw_dtor.trc");
    writeTrace(randomTrace(2000, 32), path, TraceFormat::V2, 100);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Strict);
    opts.prefetch = Prefetch::On;
    FaultInjector::Spec spec;
    spec.throwAfterReads = 9;
    opts.inject = spec;

    { TraceReader reader(path, opts); }
    // Also: destruction mid-stream with a healthy helper thread.
    {
        TraceReaderOptions healthy = withPolicy(ReadPolicy::Strict);
        healthy.prefetch = Prefetch::On;
        TraceReader reader(path, healthy);
        reader.next();
    }
    SUCCEED();
    std::remove(path.c_str());
}

TEST(FaultInjection, ForeignExceptionWithoutPrefetchIsContained)
{
    const std::string path = tmpPath("cac_fi_throw_sync.trc");
    writeTrace(randomTrace(2000, 33), path, TraceFormat::V2, 100);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Strict);
    opts.prefetch = Prefetch::Off;
    FaultInjector::Spec spec;
    spec.throwAfterReads = 9;
    opts.inject = spec;

    TraceReader reader(path, opts);
    ASSERT_TRUE(reader.ok()) << reader.error();
    drain(reader);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.errorInfo().code, ErrorCode::WorkerFailed);
    std::remove(path.c_str());
}

TEST(FaultInjection, ThrowDuringHeaderReadFailsConstructionCleanly)
{
    const std::string path = tmpPath("cac_fi_throw_hdr.trc");
    writeTrace(randomTrace(100, 34), path, TraceFormat::V2, 100);

    TraceReaderOptions opts = withPolicy(ReadPolicy::Strict);
    FaultInjector::Spec spec;
    spec.throwAfterReads = 1; // the first read is the header
    opts.inject = spec;

    TraceReader reader(path, opts);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.errorInfo().code, ErrorCode::WorkerFailed);
    std::remove(path.c_str());
}

// ---- spec parsing ----------------------------------------------------

TEST(FaultInjection, ParseSpecRoundTripsEveryKey)
{
    std::string error;
    auto spec = FaultInjector::parseSpec(
        "seed=42,flip=1e-6,short=0.25,fail=0.5,burst=3,lat=50,throw=9",
        &error);
    ASSERT_TRUE(spec.has_value()) << error;
    EXPECT_EQ(spec->seed, 42u);
    EXPECT_DOUBLE_EQ(spec->flipPerByte, 1e-6);
    EXPECT_DOUBLE_EQ(spec->shortReadProb, 0.25);
    EXPECT_DOUBLE_EQ(spec->transientProb, 0.5);
    EXPECT_EQ(spec->transientBurst, 3u);
    EXPECT_EQ(spec->latencyUs, 50u);
    EXPECT_EQ(spec->throwAfterReads, 9u);
}

TEST(FaultInjection, ParseSpecRejectsMalformedInput)
{
    std::string error;
    EXPECT_FALSE(FaultInjector::parseSpec("bogus=1", &error));
    EXPECT_NE(error.find("unknown inject key"), std::string::npos)
        << error;
    EXPECT_FALSE(FaultInjector::parseSpec("flip", &error));
    EXPECT_NE(error.find("key=value"), std::string::npos) << error;
    EXPECT_FALSE(FaultInjector::parseSpec("flip=notanumber", &error));
    EXPECT_NE(error.find("bad value"), std::string::npos) << error;
}

} // anonymous namespace
} // namespace cac
