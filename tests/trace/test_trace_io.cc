/**
 * @file
 * Round-trip tests for the binary trace format.
 */

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "trace/io.hh"

namespace cac
{
namespace
{

std::string
tmpPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

Trace
randomTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Trace t;
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord rec;
        rec.op = static_cast<OpClass>(rng.nextBelow(10));
        rec.dst = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.nextBelow(65)) - 1);
        rec.src1 = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.nextBelow(65)) - 1);
        rec.src2 = -1;
        rec.taken = rng.chance(0.5);
        rec.addr = rng.next();
        rec.pc = static_cast<std::uint32_t>(rng.nextBelow(1 << 20)) * 4;
        t.push_back(rec);
    }
    return t;
}

TEST(TraceIo, RoundTripPreservesEverything)
{
    const std::string path = tmpPath("cac_roundtrip.trc");
    Trace original = randomTrace(5000, 1);
    writeTrace(original, path);
    Trace loaded = readTrace(path);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(loaded[i].op, original[i].op);
        EXPECT_EQ(loaded[i].dst, original[i].dst);
        EXPECT_EQ(loaded[i].src1, original[i].src1);
        EXPECT_EQ(loaded[i].src2, original[i].src2);
        EXPECT_EQ(loaded[i].taken, original[i].taken);
        EXPECT_EQ(loaded[i].addr, original[i].addr);
        EXPECT_EQ(loaded[i].pc, original[i].pc);
    }
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    const std::string path = tmpPath("cac_empty.trc");
    writeTrace({}, path);
    EXPECT_TRUE(readTrace(path).empty());
    std::remove(path.c_str());
}

TEST(TraceIoDeath, MissingFileIsFatal)
{
    EXPECT_EXIT((void)readTrace("/nonexistent/path/x.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIoDeath, BadMagicIsFatal)
{
    const std::string path = tmpPath("cac_badmagic.trc");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("NOTATRACE_______", 16, 1, f);
    std::fclose(f);
    EXPECT_EXIT((void)readTrace(path), ::testing::ExitedWithCode(1),
                "not a CACTRC01");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, TruncatedBodyIsFatal)
{
    const std::string path = tmpPath("cac_trunc.trc");
    // V1 explicitly: this test pins the legacy byte layout.
    writeTrace(randomTrace(100, 2), path, TraceFormat::V1);
    // Chop the file.
    std::filesystem::resize_file(path, 16 + 24 * 50 + 7);
    EXPECT_EXIT((void)readTrace(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace cac
