/**
 * @file
 * Streaming-replay tests: TraceReader chunking against readTrace,
 * clean error reporting with byte offsets, and — the engine-level
 * guarantee — stats-equivalence of streamed vs fully-loaded replay for
 * every registry organization and the extended hierarchy/CPU targets.
 */

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/registry.hh"
#include "core/sim_target.hh"
#include "trace/io.hh"
#include "workloads/spec_proxy.hh"

namespace cac
{
namespace
{

std::string
tmpPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

Trace
randomTrace(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Trace t;
    for (std::size_t i = 0; i < n; ++i) {
        TraceRecord rec;
        rec.op = static_cast<OpClass>(rng.nextBelow(10));
        rec.dst = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.nextBelow(65)) - 1);
        rec.src1 = static_cast<std::int8_t>(
            static_cast<std::int64_t>(rng.nextBelow(65)) - 1);
        rec.src2 = -1;
        rec.taken = rng.chance(0.5);
        rec.addr = rng.next();
        rec.pc = static_cast<std::uint32_t>(rng.nextBelow(1 << 20)) * 4;
        t.push_back(rec);
    }
    return t;
}

/** Concatenate every chunk the reader yields. */
Trace
drain(TraceReader &reader)
{
    Trace all;
    while (true) {
        const std::vector<TraceRecord> &chunk = reader.next();
        if (chunk.empty())
            break;
        all.insert(all.end(), chunk.begin(), chunk.end());
    }
    return all;
}

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].op, b[i].op) << i;
        EXPECT_EQ(a[i].dst, b[i].dst) << i;
        EXPECT_EQ(a[i].src1, b[i].src1) << i;
        EXPECT_EQ(a[i].src2, b[i].src2) << i;
        EXPECT_EQ(a[i].taken, b[i].taken) << i;
        EXPECT_EQ(a[i].addr, b[i].addr) << i;
        EXPECT_EQ(a[i].pc, b[i].pc) << i;
    }
}

TEST(TraceReader, EmptyTraceYieldsNoChunks)
{
    const std::string path = tmpPath("cac_reader_empty.trc");
    writeTrace({}, path);
    TraceReader reader(path);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.recordCount(), 0u);
    EXPECT_TRUE(reader.next().empty());
    EXPECT_TRUE(reader.next().empty()); // stays empty, stays ok
    EXPECT_TRUE(reader.ok());
    std::remove(path.c_str());
}

TEST(TraceReader, TraceSmallerThanOneChunk)
{
    const std::string path = tmpPath("cac_reader_small.trc");
    const Trace original = randomTrace(10, 3);
    writeTrace(original, path);
    TraceReader reader(path, 4096);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.recordCount(), 10u);
    const std::vector<TraceRecord> &chunk = reader.next();
    EXPECT_EQ(chunk.size(), 10u);
    EXPECT_TRUE(reader.next().empty());
    EXPECT_EQ(reader.recordsRead(), 10u);
    std::remove(path.c_str());
}

TEST(TraceReader, ChunkBoundaryStraddling)
{
    const std::string path = tmpPath("cac_reader_straddle.trc");
    // 2500 records over 1000-record chunks: 1000 + 1000 + 500.
    const Trace original = randomTrace(2500, 4);
    writeTrace(original, path);
    TraceReader reader(path, 1000);
    ASSERT_TRUE(reader.ok()) << reader.error();
    EXPECT_EQ(reader.next().size(), 1000u);
    EXPECT_EQ(reader.next().size(), 1000u);
    EXPECT_EQ(reader.next().size(), 500u);
    EXPECT_TRUE(reader.next().empty());
    EXPECT_TRUE(reader.ok());

    // The chunk concatenation is the whole trace, field for field.
    reader.rewind();
    expectTracesEqual(drain(reader), original);
    std::remove(path.c_str());
}

TEST(TraceReader, MatchesReadTrace)
{
    const std::string path = tmpPath("cac_reader_match.trc");
    writeTrace(randomTrace(5000, 5), path);
    TraceReader reader(path, 257); // deliberately unaligned chunk size
    expectTracesEqual(drain(reader), readTrace(path));
    std::remove(path.c_str());
}

TEST(TraceReader, TruncationReportsByteOffsets)
{
    const std::string path = tmpPath("cac_reader_trunc.trc");
    // V1 explicitly: the offsets below assume the legacy layout.
    writeTrace(randomTrace(100, 6), path, TraceFormat::V1);
    // Chop mid-record: 50 whole records + 7 stray bytes remain.
    std::filesystem::resize_file(path, 16 + 24 * 50 + 7);

    TraceReader reader(path, 32);
    ASSERT_TRUE(reader.ok()) << reader.error();
    Trace partial = drain(reader);
    EXPECT_FALSE(reader.ok());
    EXPECT_LE(partial.size(), 50u);
    EXPECT_NE(reader.error().find("truncated"), std::string::npos)
        << reader.error();
    EXPECT_NE(reader.error().find("byte"), std::string::npos)
        << reader.error();
    // The expected full size (16 + 100 * 24) is named in the message.
    EXPECT_NE(reader.error().find("2416"), std::string::npos)
        << reader.error();
    std::remove(path.c_str());
}

TEST(TraceReader, TryReadTraceReportsErrorsWithoutExiting)
{
    Trace out;
    std::string error;
    EXPECT_FALSE(tryReadTrace("/nonexistent/path/x.trc", out, error));
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

    const std::string path = tmpPath("cac_reader_badmagic.trc");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fwrite("NOTATRACE_______", 16, 1, f);
    std::fclose(f);
    EXPECT_FALSE(tryReadTrace(path, out, error));
    EXPECT_NE(error.find("not a CACTRC01"), std::string::npos) << error;
    std::remove(path.c_str());
}

TEST(TraceReader, RewindReplaysFromTheFirstRecord)
{
    const std::string path = tmpPath("cac_reader_rewind.trc");
    writeTrace(randomTrace(300, 7), path);
    TraceReader reader(path, 128);
    const Trace first = drain(reader);
    reader.rewind();
    EXPECT_EQ(reader.recordsRead(), 0u);
    expectTracesEqual(drain(reader), first);
    std::remove(path.c_str());
}

TEST(TraceReader, SeekToPositionsMidStream)
{
    const std::string path = tmpPath("cac_reader_seek.trc");
    const Trace original = randomTrace(1000, 8);
    writeTrace(original, path);

    TraceReader reader(path, 128);
    ASSERT_TRUE(reader.seekTo(700));
    const Trace tail = drain(reader);
    ASSERT_EQ(tail.size(), 300u);
    expectTracesEqual(tail, Trace(original.begin() + 700,
                                  original.end()));
    // seekTo does not reset the delivered-records counter.
    EXPECT_EQ(reader.recordsRead(), 300u);

    // Seeking back mid-stream re-reads from the new position.
    ASSERT_TRUE(reader.seekTo(999));
    EXPECT_EQ(reader.next().size(), 1u);

    // Past-the-end clamps to end-of-trace: no records, still ok.
    ASSERT_TRUE(reader.seekTo(5000));
    EXPECT_TRUE(reader.next().empty());
    EXPECT_TRUE(reader.ok());
    std::remove(path.c_str());
}

TEST(TraceReader, PrefetchOnMatchesPrefetchOff)
{
    const std::string path = tmpPath("cac_reader_prefetch.trc");
    const Trace original = randomTrace(3000, 9);
    writeTrace(original, path);

    // Force the helper thread on even on a single-core machine, with a
    // chunk size that exercises many producer/consumer handoffs.
    TraceReader on(path, 100, TraceReader::Prefetch::On);
    ASSERT_TRUE(on.ok()) << on.error();
    expectTracesEqual(drain(on), original);
    EXPECT_EQ(on.recordsRead(), 3000u);
    EXPECT_TRUE(on.ok());

    // rewind() must stop and restart the prefetcher cleanly.
    on.rewind();
    EXPECT_EQ(on.recordsRead(), 0u);
    expectTracesEqual(drain(on), original);

    // seekTo() under prefetch delivers the same tail.
    ASSERT_TRUE(on.seekTo(2500));
    const Trace tail = drain(on);
    ASSERT_EQ(tail.size(), 500u);
    expectTracesEqual(tail, Trace(original.begin() + 2500,
                                  original.end()));
    std::remove(path.c_str());
}

TEST(TraceReader, PrefetchOnReportsTruncation)
{
    const std::string path = tmpPath("cac_reader_prefetch_trunc.trc");
    writeTrace(randomTrace(100, 10), path, TraceFormat::V1);
    std::filesystem::resize_file(path, 16 + 24 * 50 + 7);

    TraceReader reader(path, 32, TraceReader::Prefetch::On);
    ASSERT_TRUE(reader.ok()) << reader.error();
    const Trace partial = drain(reader);
    EXPECT_FALSE(reader.ok());
    EXPECT_LE(partial.size(), 50u);
    EXPECT_NE(reader.error().find("truncated"), std::string::npos)
        << reader.error();
    std::remove(path.c_str());
}

/**
 * The acceptance-criteria test: streamed replay is stats-identical to
 * fully-loaded replay for every registry organization (one example
 * label per entry) and for the extended hierarchy and CPU targets —
 * even with a chunk size chosen to straddle every internal batch.
 */
TEST(StreamedReplay, StatsMatchLoadedReplayForEveryTarget)
{
    const std::string path = tmpPath("cac_reader_equiv.trc");
    writeTrace(buildSpecProxy("swim", 20000), path);
    const Trace loaded = readTrace(path);

    std::vector<std::string> labels =
        OrgRegistry::global().exampleLabels();
    labels.push_back("2lvl:a2-Hp-Sk/a4");
    labels.push_back("2lvl:a2/a4");
    labels.push_back("cpu:8k-conv");
    labels.push_back("cpu:8k-ipoly-cp-pred");
    labels.push_back("cpu:a2-Hp-Sk");

    const TargetSpec spec;
    for (const std::string &label : labels) {
        ASSERT_TRUE(OrgRegistry::global().knownTarget(label)) << label;

        auto whole = OrgRegistry::global().buildTarget(label, spec);
        whole->replay(loaded.data(), loaded.size());
        whole->finish();
        const TargetStats want = whole->stats();

        auto streamed = OrgRegistry::global().buildTarget(label, spec);
        TraceReader reader(path, 333); // straddles every batch size
        while (true) {
            const std::vector<TraceRecord> &chunk = reader.next();
            if (chunk.empty())
                break;
            streamed->replay(chunk.data(), chunk.size());
        }
        ASSERT_TRUE(reader.ok()) << reader.error();
        streamed->finish();
        const TargetStats got = streamed->stats();

        EXPECT_EQ(got.l1.loads, want.l1.loads) << label;
        EXPECT_EQ(got.l1.stores, want.l1.stores) << label;
        EXPECT_EQ(got.l1.loadMisses, want.l1.loadMisses) << label;
        EXPECT_EQ(got.l1.storeMisses, want.l1.storeMisses) << label;
        EXPECT_EQ(got.l1.fills, want.l1.fills) << label;
        EXPECT_EQ(got.l1.evictions, want.l1.evictions) << label;
        ASSERT_EQ(got.hasHierarchy, want.hasHierarchy) << label;
        if (want.hasHierarchy) {
            EXPECT_EQ(got.l2.misses(), want.l2.misses()) << label;
            EXPECT_EQ(got.holes.holesCreated, want.holes.holesCreated)
                << label;
            EXPECT_EQ(got.holes.inclusionInvalidates,
                      want.holes.inclusionInvalidates)
                << label;
        }
        ASSERT_EQ(got.hasCpu, want.hasCpu) << label;
        if (want.hasCpu) {
            // Cycle-identical, not just stats-identical.
            EXPECT_EQ(got.cpu.cycles, want.cpu.cycles) << label;
            EXPECT_EQ(got.cpu.instructions, want.cpu.instructions)
                << label;
            EXPECT_EQ(got.cpu.branchMispredicts,
                      want.cpu.branchMispredicts)
                << label;
        }
    }
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace cac
