# CLI smoke test for cac_sim, run as: cmake -DSIM=<path> -P smoke.cmake
#
# Guards the flag-error contract: unknown flags and missing values must
# print the *full* usage (including the analysis-layer flags) to stderr
# and exit non-zero, and --analyze must work without a trace. A plain
# CMake script so the check needs no extra test dependency.

if(NOT DEFINED SIM)
  message(FATAL_ERROR "pass -DSIM=<path-to-cac_sim>")
endif()

# 1. Unknown flag: non-zero exit, diagnostic, full usage text.
execute_process(COMMAND ${SIM} --definitely-not-a-flag
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown flag exited 0")
endif()
if(NOT err MATCHES "unknown argument '--definitely-not-a-flag'")
  message(FATAL_ERROR "unknown flag not diagnosed: ${err}")
endif()
foreach(flag --analyze --search --stream --l2-size --l2-ways --threads
        --scenario --cores --metrics-out --trace-out --obs-window
        --version)
  if(NOT err MATCHES "${flag}")
    message(FATAL_ERROR "usage text is missing ${flag}: ${err}")
  endif()
endforeach()

# 2. Flag with a missing value: non-zero exit plus a diagnostic.
execute_process(COMMAND ${SIM} --trace
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "missing flag value exited 0")
endif()
if(NOT err MATCHES "missing value for '--trace'")
  message(FATAL_ERROR "missing value not diagnosed: ${err}")
endif()

# 3. No arguments at all: usage, non-zero.
execute_process(COMMAND ${SIM}
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "bare invocation exited 0")
endif()

# 4. --search without --trace: diagnosed, non-zero.
execute_process(COMMAND ${SIM} --search
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "--search without --trace exited 0")
endif()
if(NOT err MATCHES "--search requires --trace")
  message(FATAL_ERROR "--search without --trace not diagnosed: ${err}")
endif()

# 5. --analyze works standalone (no trace) and prints the certificate.
execute_process(COMMAND ${SIM} --analyze a2-Hp-Sk
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--analyze a2-Hp-Sk failed (${rc}): ${err}")
endif()
if(NOT out MATCHES "stride-freeness certificate: PASS")
  message(FATAL_ERROR "--analyze output missing certificate: ${out}")
endif()
if(NOT out MATCHES "conflict-free")
  message(FATAL_ERROR "--analyze output missing stride table: ${out}")
endif()

# 6. --scenario with an unknown workload: a clear diagnostic naming
#    the bad atom and the known labels, non-zero exit — never a
#    silently empty grid.
execute_process(COMMAND ${SIM} --scenario mix:swimm+tomcatv@q=5k
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "--scenario with unknown workload exited 0")
endif()
if(NOT err MATCHES "unknown workload 'swimm'")
  message(FATAL_ERROR "unknown scenario workload not diagnosed: ${err}")
endif()
if(NOT err MATCHES "known:.*swim.*strideN.*trace:PATH")
  message(FATAL_ERROR
          "diagnostic does not list the known workloads: ${err}")
endif()

# 7. A malformed scenario option is diagnosed too.
execute_process(COMMAND ${SIM} --scenario mix:swim@zz=1
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "--scenario with bad option exited 0")
endif()
if(NOT err MATCHES "bad option 'zz=1'")
  message(FATAL_ERROR "bad scenario option not diagnosed: ${err}")
endif()

# 8. A tiny mix runs end to end and reports per-program attribution
#    rows plus the aggregate.
execute_process(COMMAND ${SIM} --scenario mix:li+compress@q=4k,n=16k
                        --org a2
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--scenario smoke run failed (${rc}): ${err}")
endif()
foreach(row li compress <all> switches)
  if(NOT out MATCHES "${row}")
    message(FATAL_ERROR "--scenario output missing '${row}': ${out}")
  endif()
endforeach()

# 9. --version prints the manifest (provenance + schema line), exit 0.
execute_process(COMMAND ${SIM} --version
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--version failed (${rc}): ${err}")
endif()
foreach(field cac_sim compiler "index dispatch" "metrics=1" CACTRC02)
  if(NOT out MATCHES "${field}")
    message(FATAL_ERROR "--version output missing '${field}': ${out}")
  endif()
endforeach()

# 10. The telemetry artifacts are emitted: a scenario run with
#     --metrics-out/--trace-out must write both files, stamped with
#     the manifest, spans and at least one time-series window.
set(obs_dir ${CMAKE_CURRENT_BINARY_DIR}/smoke_obs)
file(MAKE_DIRECTORY ${obs_dir})
execute_process(COMMAND ${SIM} --scenario mix:li+compress@q=4k,n=16k
                        --org a2
                        --metrics-out ${obs_dir}/metrics.json
                        --trace-out ${obs_dir}/trace.json
                        --obs-window 4096
                RESULT_VARIABLE rc OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "observability smoke run failed (${rc}): ${err}")
endif()
foreach(artifact metrics.json trace.json)
  if(NOT EXISTS ${obs_dir}/${artifact})
    message(FATAL_ERROR "observability run did not write ${artifact}")
  endif()
endforeach()
file(READ ${obs_dir}/metrics.json metrics)
foreach(key "\"manifest\"" "\"counters\"" "\"windows\""
        "\"miss_ratio\"")
  if(NOT metrics MATCHES ${key})
    message(FATAL_ERROR "metrics.json missing ${key}: ${metrics}")
  endif()
endforeach()
file(READ ${obs_dir}/trace.json trace)
foreach(key "\"traceEvents\"" "\"manifest\"")
  if(NOT trace MATCHES "${key}")
    message(FATAL_ERROR "trace.json missing ${key}")
  endif()
endforeach()
# Counters and spans come from the CAC_OBS macros, which a
# -DCAC_OBS=OFF build compiles out — the artifacts stay valid but
# span-free, and the manifest says so.
if(metrics MATCHES "\"obs_compiled\": true")
  if(NOT metrics MATCHES "\"scenario.switches\"")
    message(FATAL_ERROR "metrics.json missing counters: ${metrics}")
  endif()
  foreach(key "\"ph\": \"X\"" "sweep.cell" "scenario.quantum")
    if(NOT trace MATCHES "${key}")
      message(FATAL_ERROR "trace.json missing ${key}")
    endif()
  endforeach()
elseif(NOT metrics MATCHES "\"obs_compiled\": false")
  message(FATAL_ERROR "metrics.json manifest lacks obs_compiled")
endif()
file(REMOVE_RECURSE ${obs_dir})

message(STATUS "cac_sim CLI smoke: all checks passed")
