/**
 * @file
 * Unit and property tests for GF(2) polynomial arithmetic — the
 * mathematical foundation of I-Poly indexing.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "poly/catalog.hh"
#include "poly/gf2poly.hh"

namespace cac
{
namespace
{

TEST(Gf2Poly, DegreeConventions)
{
    EXPECT_EQ(Gf2Poly::zero().degree(), -1);
    EXPECT_EQ(Gf2Poly::one().degree(), 0);
    EXPECT_EQ(Gf2Poly::monomial(1).degree(), 1);
    EXPECT_EQ(Gf2Poly{0x89}.degree(), 7); // x^7 + x^3 + 1
}

TEST(Gf2Poly, AdditionIsXor)
{
    Gf2Poly a{0b1011}, b{0b0110};
    EXPECT_EQ((a + b).coeffs(), 0b1101u);
}

TEST(Gf2Poly, AdditionSelfInverse)
{
    Gf2Poly a{0xABCD};
    EXPECT_TRUE((a + a).isZero());
}

TEST(Gf2Poly, MultiplicationBasics)
{
    // (x + 1)(x + 1) = x^2 + 1 over GF(2)
    Gf2Poly xp1{0b11};
    EXPECT_EQ((xp1 * xp1).coeffs(), 0b101u);
    // x^3 * x^4 = x^7
    EXPECT_EQ((Gf2Poly::monomial(3) * Gf2Poly::monomial(4)).coeffs(),
              0x80u);
}

TEST(Gf2Poly, MultiplicationIdentityAndZero)
{
    Gf2Poly a{0x1234};
    EXPECT_EQ(a * Gf2Poly::one(), a);
    EXPECT_TRUE((a * Gf2Poly::zero()).isZero());
}

TEST(Gf2Poly, MultiplicationCommutes)
{
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        Gf2Poly a{rng.nextBelow(1 << 16)};
        Gf2Poly b{rng.nextBelow(1 << 16)};
        EXPECT_EQ(a * b, b * a);
    }
}

TEST(Gf2Poly, DivModInvariant)
{
    // Property: a == (a div p) * p + (a mod p), and deg(r) < deg(p).
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
        Gf2Poly a{rng.nextBelow(1ull << 30)};
        Gf2Poly p{(rng.nextBelow(1 << 10)) | (1 << 10) | 1};
        Gf2Poly q = a.div(p);
        Gf2Poly r = a.mod(p);
        EXPECT_LT(r.degree(), p.degree());
        EXPECT_EQ(q * p + r, a);
    }
}

TEST(Gf2Poly, ModIsLinear)
{
    // Reduction mod P is GF(2)-linear: (a+b) mod p == a mod p + b mod p.
    // This linearity is exactly what makes the XOR-tree implementation
    // of the index function possible.
    Rng rng(3);
    Gf2Poly p{0x89};
    for (int i = 0; i < 500; ++i) {
        Gf2Poly a{rng.nextBelow(1ull << 40)};
        Gf2Poly b{rng.nextBelow(1ull << 40)};
        EXPECT_EQ((a + b).mod(p), a.mod(p) + b.mod(p));
    }
}

TEST(Gf2Poly, GcdBasics)
{
    Gf2Poly a{0b110};  // x^2 + x = x(x+1)
    Gf2Poly b{0b10};   // x
    EXPECT_EQ(Gf2Poly::gcd(a, b).coeffs(), 0b10u);
    EXPECT_EQ(Gf2Poly::gcd(a, Gf2Poly::zero()), a);
}

TEST(Gf2Poly, GcdDividesBoth)
{
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        Gf2Poly a{rng.nextBelow(1 << 20) | 1};
        Gf2Poly b{rng.nextBelow(1 << 20) | 1};
        Gf2Poly g = Gf2Poly::gcd(a, b);
        EXPECT_TRUE(a.mod(g).isZero());
        EXPECT_TRUE(b.mod(g).isZero());
    }
}

TEST(Gf2Poly, MulModMatchesMulThenMod)
{
    Rng rng(5);
    Gf2Poly p{0x11D}; // degree 8
    for (int i = 0; i < 500; ++i) {
        Gf2Poly a{rng.nextBelow(1 << 8)};
        Gf2Poly b{rng.nextBelow(1 << 8)};
        EXPECT_EQ(Gf2Poly::mulMod(a, b, p), (a * b).mod(p));
    }
}

TEST(Gf2Poly, PowModAgreesWithRepeatedMul)
{
    Gf2Poly p{0x89};
    Gf2Poly x = Gf2Poly::monomial(1);
    Gf2Poly acc = Gf2Poly::one();
    for (unsigned e = 0; e < 40; ++e) {
        EXPECT_EQ(Gf2Poly::powMod(x, e, p), acc) << "e=" << e;
        acc = Gf2Poly::mulMod(acc, x, p);
    }
}

TEST(Gf2Poly, XPow2kMatchesPowMod)
{
    Gf2Poly p{0x11D};
    for (unsigned k = 0; k < 6; ++k) {
        EXPECT_EQ(Gf2Poly::xPow2k(k, p),
                  Gf2Poly::powMod(Gf2Poly::monomial(1),
                                  std::uint64_t{1} << k, p));
    }
}

TEST(Gf2Poly, KnownIrreducibles)
{
    // Classic small irreducible polynomials.
    for (std::uint64_t bits : {0x7ull,   // x^2+x+1
                               0xBull,   // x^3+x+1
                               0xDull,   // x^3+x^2+1
                               0x13ull,  // x^4+x+1
                               0x89ull,  // x^7+x^3+1
                               0x11Dull}) {
        EXPECT_TRUE(Gf2Poly{bits}.isIrreducible()) << std::hex << bits;
    }
}

TEST(Gf2Poly, KnownReducibles)
{
    // x^2+1 = (x+1)^2; x^4+x^2+1=(x^2+x+1)^2; anything without the
    // constant term is divisible by x.
    for (std::uint64_t bits : {0x5ull, 0x15ull, 0x6ull, 0x9ull,
                               0xFull}) {
        EXPECT_FALSE(Gf2Poly{bits}.isIrreducible()) << std::hex << bits;
    }
}

TEST(Gf2Poly, IrreducibleProductIsReducible)
{
    Gf2Poly a{0xB}, b{0x13};
    EXPECT_FALSE((a * b).isIrreducible());
}

TEST(Gf2Poly, PrimitiveImpliesIrreducible)
{
    for (unsigned deg = 2; deg <= 10; ++deg) {
        Gf2Poly p = PolyCatalog::classicPrimitive(deg);
        EXPECT_TRUE(p.isPrimitive()) << p.toString();
        EXPECT_TRUE(p.isIrreducible()) << p.toString();
    }
}

TEST(Gf2Poly, IrreducibleButNotPrimitive)
{
    // x^4 + x^3 + x^2 + x + 1 is irreducible of degree 4 but has order
    // 5 (divides 15), so it is not primitive.
    Gf2Poly p{0x1F};
    EXPECT_TRUE(p.isIrreducible());
    EXPECT_FALSE(p.isPrimitive());
}

TEST(Gf2Poly, ToStringFormats)
{
    EXPECT_EQ(Gf2Poly::zero().toString(), "0");
    EXPECT_EQ(Gf2Poly::one().toString(), "1");
    EXPECT_EQ(Gf2Poly{0x89}.toString(), "x^7 + x^3 + 1");
    EXPECT_EQ(Gf2Poly{0b11}.toString(), "x + 1");
}

/** Degrees for the parameterized Fermat-style property sweep. */
class Gf2PolyDegree : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(Gf2PolyDegree, IrreducibleSatisfiesFieldProperty)
{
    // In GF(2^n) built from an irreducible P, every element satisfies
    // a^(2^n) == a. Check for x and a few random elements.
    const unsigned n = GetParam();
    Gf2Poly p = PolyCatalog::irreducible(n, 0);
    Rng rng(n);
    for (int i = 0; i < 20; ++i) {
        Gf2Poly a{rng.nextBelow(std::uint64_t{1} << n)};
        Gf2Poly apow = a;
        for (unsigned k = 0; k < n; ++k)
            apow = Gf2Poly::mulMod(apow, apow, p);
        EXPECT_EQ(apow, a.mod(p)) << "degree " << n;
    }
}

INSTANTIATE_TEST_SUITE_P(Degrees, Gf2PolyDegree,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u, 14u));

} // anonymous namespace
} // namespace cac
