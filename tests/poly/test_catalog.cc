/**
 * @file
 * Tests for the irreducible/primitive polynomial catalog.
 */

#include <bit>
#include <set>

#include <gtest/gtest.h>

#include "poly/catalog.hh"

namespace cac
{
namespace
{

TEST(PolyCatalog, CountsMatchNecklaceFormula)
{
    // Number of monic irreducible polynomials over GF(2):
    // deg:   1  2  3  4  5  6  7   8   9   10
    // count: 2  1  2  3  6  9  18  30  56  99
    const std::size_t expected[] = {0, 2, 1, 2, 3, 6, 9, 18, 30, 56, 99};
    for (unsigned deg = 1; deg <= 10; ++deg) {
        EXPECT_EQ(PolyCatalog::countIrreducible(deg), expected[deg])
            << "degree " << deg;
        EXPECT_EQ(PolyCatalog::theoreticalIrreducibleCount(deg),
                  expected[deg])
            << "degree " << deg;
    }
}

TEST(PolyCatalog, EnumeratedPolysAreIrreducible)
{
    for (unsigned deg = 2; deg <= 12; ++deg) {
        const std::size_t n =
            std::min<std::size_t>(PolyCatalog::countIrreducible(deg), 8);
        for (std::size_t k = 0; k < n; ++k) {
            Gf2Poly p = PolyCatalog::irreducible(deg, k);
            EXPECT_EQ(p.degree(), static_cast<int>(deg));
            EXPECT_TRUE(p.isIrreducible()) << p.toString();
        }
    }
}

TEST(PolyCatalog, EnumerationIsSortedAndDistinct)
{
    for (unsigned deg : {4u, 7u, 8u}) {
        const std::size_t n = PolyCatalog::countIrreducible(deg);
        std::set<std::uint64_t> seen;
        std::uint64_t prev = 0;
        for (std::size_t k = 0; k < n; ++k) {
            const std::uint64_t c =
                PolyCatalog::irreducible(deg, k).coeffs();
            EXPECT_GT(c, prev);
            prev = c;
            seen.insert(c);
        }
        EXPECT_EQ(seen.size(), n);
    }
}

TEST(PolyCatalog, PrimitiveEntriesArePrimitive)
{
    for (unsigned deg = 2; deg <= 10; ++deg) {
        Gf2Poly p = PolyCatalog::primitive(deg, 0);
        EXPECT_TRUE(p.isPrimitive()) << p.toString();
    }
}

TEST(PolyCatalog, ClassicPrimitivesVerify)
{
    // The hand-entered LFSR table must agree with the algebraic test.
    for (unsigned deg = 1; deg <= 24; ++deg) {
        Gf2Poly p = PolyCatalog::classicPrimitive(deg);
        EXPECT_EQ(p.degree(), static_cast<int>(deg));
        EXPECT_TRUE(p.isPrimitive())
            << "degree " << deg << ": " << p.toString();
    }
}

TEST(PolyCatalog, ClassicPrimitivesVerifyLargeDegrees)
{
    for (unsigned deg = 25; deg <= 32; ++deg) {
        Gf2Poly p = PolyCatalog::classicPrimitive(deg);
        EXPECT_EQ(p.degree(), static_cast<int>(deg));
        EXPECT_TRUE(p.isPrimitive())
            << "degree " << deg << ": " << p.toString();
    }
}

TEST(PolyCatalog, ClassicPrimitiveCoefficientsForDegrees25To32)
{
    // Pin the exact coefficient words for the large degrees against an
    // independently hand-entered copy of the standard LFSR tap tables,
    // so a catalog edit cannot silently swap in a different (even if
    // still primitive) polynomial and shift every derived index
    // function. Taps listed as exponents with nonzero coefficients.
    struct Entry
    {
        unsigned degree;
        std::uint64_t coeffs;
        const char *rendered;
    };
    const Entry expected[] = {
        {25, (1ull << 25) | (1ull << 3) | 1, "x^25 + x^3 + 1"},
        {26,
         (1ull << 26) | (1ull << 6) | (1ull << 2) | (1ull << 1) | 1,
         "x^26 + x^6 + x^2 + x + 1"},
        {27,
         (1ull << 27) | (1ull << 5) | (1ull << 2) | (1ull << 1) | 1,
         "x^27 + x^5 + x^2 + x + 1"},
        {28, (1ull << 28) | (1ull << 3) | 1, "x^28 + x^3 + 1"},
        {29, (1ull << 29) | (1ull << 2) | 1, "x^29 + x^2 + 1"},
        {30,
         (1ull << 30) | (1ull << 6) | (1ull << 4) | (1ull << 1) | 1,
         "x^30 + x^6 + x^4 + x + 1"},
        {31, (1ull << 31) | (1ull << 3) | 1, "x^31 + x^3 + 1"},
        {32,
         (1ull << 32) | (1ull << 7) | (1ull << 5) | (1ull << 3)
             | (1ull << 2) | (1ull << 1) | 1,
         "x^32 + x^7 + x^5 + x^3 + x^2 + x + 1"},
    };
    for (const Entry &e : expected) {
        const Gf2Poly p = PolyCatalog::classicPrimitive(e.degree);
        EXPECT_EQ(p.coeffs(), e.coeffs) << "degree " << e.degree;
        EXPECT_EQ(p.toString(), e.rendered);
        // A primitive polynomial is irreducible and (for degree > 1)
        // has an odd number of terms including the constant one.
        EXPECT_TRUE(p.isIrreducible());
        EXPECT_EQ(p.coeff(0), 1u);
        EXPECT_EQ(std::popcount(p.coeffs()) % 2, 1);
    }
}

TEST(PolyCatalog, Degree7HasEnoughForEightWays)
{
    // An 8-way skewed I-Poly cache with 128 sets needs 8 distinct
    // degree-7 irreducible polynomials; there are 18.
    EXPECT_GE(PolyCatalog::countIrreducible(7), 8u);
}

} // anonymous namespace
} // namespace cac
