/**
 * @file
 * Tests for the XOR-tree compilation of the polynomial modulus.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/rng.hh"
#include "poly/catalog.hh"
#include "poly/xor_matrix.hh"

namespace cac
{
namespace
{

TEST(XorMatrix, MatchesPolynomialModulus)
{
    // Property: the compiled network computes exactly
    // A(x) mod P(x) restricted to the input bits.
    Rng rng(1);
    for (unsigned deg : {5u, 7u, 8u, 10u}) {
        Gf2Poly p = PolyCatalog::irreducible(deg, 0);
        XorMatrix m(p, 19);
        for (int i = 0; i < 1000; ++i) {
            const std::uint64_t a = rng.nextBelow(1ull << 19);
            EXPECT_EQ(m.apply(a), Gf2Poly{a}.mod(p).coeffs());
        }
    }
}

TEST(XorMatrix, IgnoresHighBits)
{
    Gf2Poly p = PolyCatalog::irreducible(7, 0);
    XorMatrix m(p, 14);
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t low = rng.nextBelow(1 << 14);
        const std::uint64_t high = rng.next() << 14;
        EXPECT_EQ(m.apply(low), m.apply(low | high));
    }
}

TEST(XorMatrix, IsLinear)
{
    // apply(a ^ b) == apply(a) ^ apply(b): the hardware is XOR trees.
    Gf2Poly p = PolyCatalog::irreducible(7, 1);
    XorMatrix m(p, 19);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t a = rng.nextBelow(1ull << 19);
        const std::uint64_t b = rng.nextBelow(1ull << 19);
        EXPECT_EQ(m.apply(a ^ b), m.apply(a) ^ m.apply(b));
    }
}

TEST(XorMatrix, IdentityOnLowBits)
{
    // x^j mod P == x^j for j < deg P, so the low m bits pass through.
    Gf2Poly p = PolyCatalog::irreducible(7, 0);
    XorMatrix m(p, 19);
    for (unsigned j = 0; j < 7; ++j)
        EXPECT_EQ(m.apply(std::uint64_t{1} << j), std::uint64_t{1} << j);
}

TEST(XorMatrix, OutputStaysInRange)
{
    Gf2Poly p = PolyCatalog::irreducible(8, 2);
    XorMatrix m(p, 20);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(m.apply(rng.next()), 1u << 8);
}

TEST(XorMatrix, FanInMatchesRowMask)
{
    Gf2Poly p = PolyCatalog::irreducible(7, 0);
    XorMatrix m(p, 14);
    unsigned max_fi = 0;
    for (unsigned i = 0; i < m.outputBits(); ++i) {
        EXPECT_EQ(m.fanIn(i), popCount(m.rowMask(i)));
        max_fi = std::max(max_fi, m.fanIn(i));
    }
    EXPECT_EQ(m.maxFanIn(), max_fi);
}

TEST(XorMatrix, PaperFanInBound)
{
    // Section 3.4: "the number of inputs is never higher than 5" for
    // the functions used in the paper (19 address bits, degree-7
    // modulus). Verify a suitable catalog polynomial exists.
    bool found = false;
    for (std::size_t k = 0; k < PolyCatalog::countIrreducible(7); ++k) {
        XorMatrix m(PolyCatalog::irreducible(7, k), 14);
        if (m.maxFanIn() <= 5)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(XorMatrix, FanInHandComputedDegree3)
{
    // P = x^3 + x + 1, v = 6. Columns of the reduction matrix:
    //   x^0 = 1, x^1 = x, x^2 = x^2,
    //   x^3 = x + 1, x^4 = x^2 + x, x^5 = x^2 + x + 1.
    // Row masks (bit j set when column j feeds that index bit):
    //   index[0] <- a0, a3, a5        -> 0b101001, fan-in 3
    //   index[1] <- a1, a3, a4, a5    -> 0b111010, fan-in 4
    //   index[2] <- a2, a4, a5        -> 0b110100, fan-in 3
    XorMatrix m(Gf2Poly{0xB}, 6);
    EXPECT_EQ(m.rowMask(0), 0b101001u);
    EXPECT_EQ(m.rowMask(1), 0b111010u);
    EXPECT_EQ(m.rowMask(2), 0b110100u);
    EXPECT_EQ(m.fanIn(0), 3u);
    EXPECT_EQ(m.fanIn(1), 4u);
    EXPECT_EQ(m.fanIn(2), 3u);
    EXPECT_EQ(m.maxFanIn(), 4u);
}

TEST(XorMatrix, FanInHandComputedDegree2)
{
    // P = x^2 + x + 1, v = 4: x^2 = x + 1, x^3 = x^2 + x = 1.
    //   index[0] <- a0, a2, a3  -> 0b1101, fan-in 3
    //   index[1] <- a1, a2      -> 0b0110, fan-in 2
    XorMatrix m(Gf2Poly{0x7}, 4);
    EXPECT_EQ(m.rowMask(0), 0b1101u);
    EXPECT_EQ(m.rowMask(1), 0b0110u);
    EXPECT_EQ(m.fanIn(0), 3u);
    EXPECT_EQ(m.fanIn(1), 2u);
    EXPECT_EQ(m.maxFanIn(), 3u);
}

TEST(XorMatrix, PaperFanInNumbers)
{
    // Section 3.4 works with 19 address bits and degree-7 moduli and
    // reports gate fan-ins never higher than 5. For P = x^7 + x^3 + 1
    // over the 14 block-address bits (19 minus the 5 offset bits) the
    // columns are x^7 = x^3+1, x^8 = x^4+x, ..., x^13 = x^6+x^5+x^2,
    // giving hand-computed per-gate fan-ins 3,3,3,4,4,4,3.
    XorMatrix m(Gf2Poly{0x89}, 14);
    const unsigned expected[7] = {3, 3, 3, 4, 4, 4, 3};
    for (unsigned i = 0; i < m.outputBits(); ++i)
        EXPECT_EQ(m.fanIn(i), expected[i]) << "gate " << i;
    EXPECT_EQ(m.maxFanIn(), 4u);
}

TEST(Gf2LinAlg, RankOfHandMatrices)
{
    // Identity of size 4.
    EXPECT_EQ(gf2Rank({0b0001, 0b0010, 0b0100, 0b1000}), 4u);
    // A duplicated row and a row that is the sum of the others.
    EXPECT_EQ(gf2Rank({0b0011, 0b0011}), 1u);
    EXPECT_EQ(gf2Rank({0b011, 0b110, 0b101}), 2u);
    EXPECT_EQ(gf2Rank({0, 0, 0}), 0u);
    EXPECT_EQ(gf2Rank({}), 0u);
}

TEST(Gf2LinAlg, NullSpaceOrthogonalAndCorrectDimension)
{
    Rng rng(7);
    for (int trial = 0; trial < 50; ++trial) {
        const unsigned cols = 4 + static_cast<unsigned>(rng.nextBelow(10));
        std::vector<std::uint64_t> rows;
        const unsigned nrows = 1 + static_cast<unsigned>(rng.nextBelow(8));
        for (unsigned i = 0; i < nrows; ++i)
            rows.push_back(rng.next() & mask(cols));

        const unsigned rank = gf2Rank(rows);
        const auto basis = gf2NullSpaceBasis(rows, cols);
        EXPECT_EQ(basis.size(), cols - rank);
        // Every basis vector is annihilated by every row...
        for (std::uint64_t v : basis) {
            for (std::uint64_t r : rows)
                EXPECT_EQ(parity(r & v), 0u);
        }
        // ...and the basis itself is linearly independent.
        EXPECT_EQ(gf2Rank(basis), basis.size());
    }
}

TEST(XorMatrix, IrreducibleModulusHasFullRank)
{
    for (unsigned deg : {5u, 7u, 8u}) {
        XorMatrix m(PolyCatalog::irreducible(deg, 0), 14);
        EXPECT_EQ(m.rank(), deg);
    }
}

TEST(XorMatrix, NullSpaceIsTheMultiplesOfTheModulus)
{
    // Null space of A -> A mod P on v input bits = {t * P : deg(t*P) < v},
    // spanned by P, xP, ..., x^(v-m-1) P: dimension v - m, and every
    // member reduces to zero.
    const unsigned v = 14;
    Gf2Poly p = PolyCatalog::irreducible(7, 2);
    XorMatrix m(p, v);
    const auto basis = m.nullSpace();
    EXPECT_EQ(basis.size(), v - 7);
    for (std::uint64_t b : basis) {
        EXPECT_EQ(m.apply(b), 0u);
        EXPECT_TRUE(Gf2Poly{b}.mod(p).isZero());
    }
}

TEST(XorMatrix, DescribeListsEveryIndexBit)
{
    Gf2Poly p = PolyCatalog::irreducible(5, 0);
    XorMatrix m(p, 10);
    const std::string d = m.describe();
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_NE(d.find("index[" + std::to_string(i) + "]"),
                  std::string::npos);
    }
}

TEST(XorMatrix, MinimalInputWidthIsIdentity)
{
    // With v == m the function degenerates to bit selection.
    Gf2Poly p = PolyCatalog::irreducible(6, 0);
    XorMatrix m(p, 6);
    for (std::uint64_t a = 0; a < 64; ++a)
        EXPECT_EQ(m.apply(a), a);
}

} // anonymous namespace
} // namespace cac
