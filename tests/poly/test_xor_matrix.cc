/**
 * @file
 * Tests for the XOR-tree compilation of the polynomial modulus.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "common/rng.hh"
#include "poly/catalog.hh"
#include "poly/xor_matrix.hh"

namespace cac
{
namespace
{

TEST(XorMatrix, MatchesPolynomialModulus)
{
    // Property: the compiled network computes exactly
    // A(x) mod P(x) restricted to the input bits.
    Rng rng(1);
    for (unsigned deg : {5u, 7u, 8u, 10u}) {
        Gf2Poly p = PolyCatalog::irreducible(deg, 0);
        XorMatrix m(p, 19);
        for (int i = 0; i < 1000; ++i) {
            const std::uint64_t a = rng.nextBelow(1ull << 19);
            EXPECT_EQ(m.apply(a), Gf2Poly{a}.mod(p).coeffs());
        }
    }
}

TEST(XorMatrix, IgnoresHighBits)
{
    Gf2Poly p = PolyCatalog::irreducible(7, 0);
    XorMatrix m(p, 14);
    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t low = rng.nextBelow(1 << 14);
        const std::uint64_t high = rng.next() << 14;
        EXPECT_EQ(m.apply(low), m.apply(low | high));
    }
}

TEST(XorMatrix, IsLinear)
{
    // apply(a ^ b) == apply(a) ^ apply(b): the hardware is XOR trees.
    Gf2Poly p = PolyCatalog::irreducible(7, 1);
    XorMatrix m(p, 19);
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t a = rng.nextBelow(1ull << 19);
        const std::uint64_t b = rng.nextBelow(1ull << 19);
        EXPECT_EQ(m.apply(a ^ b), m.apply(a) ^ m.apply(b));
    }
}

TEST(XorMatrix, IdentityOnLowBits)
{
    // x^j mod P == x^j for j < deg P, so the low m bits pass through.
    Gf2Poly p = PolyCatalog::irreducible(7, 0);
    XorMatrix m(p, 19);
    for (unsigned j = 0; j < 7; ++j)
        EXPECT_EQ(m.apply(std::uint64_t{1} << j), std::uint64_t{1} << j);
}

TEST(XorMatrix, OutputStaysInRange)
{
    Gf2Poly p = PolyCatalog::irreducible(8, 2);
    XorMatrix m(p, 20);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(m.apply(rng.next()), 1u << 8);
}

TEST(XorMatrix, FanInMatchesRowMask)
{
    Gf2Poly p = PolyCatalog::irreducible(7, 0);
    XorMatrix m(p, 14);
    unsigned max_fi = 0;
    for (unsigned i = 0; i < m.outputBits(); ++i) {
        EXPECT_EQ(m.fanIn(i), popCount(m.rowMask(i)));
        max_fi = std::max(max_fi, m.fanIn(i));
    }
    EXPECT_EQ(m.maxFanIn(), max_fi);
}

TEST(XorMatrix, PaperFanInBound)
{
    // Section 3.4: "the number of inputs is never higher than 5" for
    // the functions used in the paper (19 address bits, degree-7
    // modulus). Verify a suitable catalog polynomial exists.
    bool found = false;
    for (std::size_t k = 0; k < PolyCatalog::countIrreducible(7); ++k) {
        XorMatrix m(PolyCatalog::irreducible(7, k), 14);
        if (m.maxFanIn() <= 5)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(XorMatrix, DescribeListsEveryIndexBit)
{
    Gf2Poly p = PolyCatalog::irreducible(5, 0);
    XorMatrix m(p, 10);
    const std::string d = m.describe();
    for (unsigned i = 0; i < 5; ++i) {
        EXPECT_NE(d.find("index[" + std::to_string(i) + "]"),
                  std::string::npos);
    }
}

TEST(XorMatrix, MinimalInputWidthIsIdentity)
{
    // With v == m the function degenerates to bit selection.
    Gf2Poly p = PolyCatalog::irreducible(6, 0);
    XorMatrix m(p, 6);
    for (std::uint64_t a = 0; a < 64; ++a)
        EXPECT_EQ(m.apply(a), a);
}

} // anonymous namespace
} // namespace cac
