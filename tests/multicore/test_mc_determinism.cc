/**
 * @file
 * Determinism tests for multicore sweeps: the scheduler interleaving
 * is a fixed property of the composed scenario, never of the host, so
 * the full CSV artifacts — per-core rows included — must be
 * byte-identical across worker thread counts and across repeated
 * runs. This is the unit-level twin of the CI smoke lane's
 * `cac_sim --csv` diff gate and of the committed
 * tests/golden/mc_swim_tomcatv.csv golden.
 */

#include <string>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/sweep.hh"
#include "scenario/scenario.hh"

namespace cac
{
namespace
{

/** The golden lane's grid: standard targets (mc rows included) over
 *  the swim+tomcatv mix. */
std::string
runGridCsv(unsigned threads)
{
    SweepRunner runner(threads);
    runner.addOrgs(standardTargetLabels());
    runner.addScenarioWorkload("mix:swim+tomcatv@q=10k,n=60k");
    return scenarioCsv(runner.run());
}

TEST(McDeterminism, ScenarioCsvIsByteStableAcrossThreadCounts)
{
    const std::string serial = runGridCsv(1);
    // The mc targets contribute per-core rows and the four multicore
    // columns; both must appear no matter how the grid was scheduled.
    EXPECT_NE(serial.find("intercore_conflict_misses"),
              std::string::npos);
    EXPECT_NE(serial.find("core0"), std::string::npos);
    EXPECT_NE(serial.find("core1"), std::string::npos);
    for (unsigned threads : {2u, 4u, 8u})
        EXPECT_EQ(runGridCsv(threads), serial) << threads;
}

TEST(McDeterminism, RepeatedRunsAreByteIdentical)
{
    const std::string first = runGridCsv(4);
    EXPECT_EQ(runGridCsv(4), first);
}

TEST(McDeterminism, SweepCsvCarriesStableMulticoreColumns)
{
    const auto run = [] {
        SweepRunner runner(4);
        runner.addTarget("2lvl:a2/a4");
        runner.addTarget("mc:2xa2-Hp-Sk/a4");
        runner.addScenarioWorkload("mix:swim+tomcatv@q=10k,n=40k");
        return sweepCsv(runner.run());
    };
    const std::string csv = run();
    // Multicore columns present, and the non-mc row leaves them empty.
    EXPECT_NE(csv.find(",cores,interventions"), std::string::npos);
    EXPECT_EQ(run(), csv);
}

TEST(McDeterminism, DirectReplayIsRunToRunIdentical)
{
    const std::shared_ptr<const Scenario> scenario =
        buildScenario("mix:swim+tomcatv@q=10k,n=60k");
    const auto replay = [&] {
        auto target = OrgRegistry::global().buildTarget(
            "mc:2xa2-Hp-Sk/a4", TargetSpec{});
        scenario->replayInto(*target);
        target->finish();
        return target->stats();
    };
    const TargetStats a = replay();
    const TargetStats b = replay();
    ASSERT_TRUE(a.hasMultiCore);
    EXPECT_EQ(a.l1.loads, b.l1.loads);
    EXPECT_EQ(a.l1.misses(), b.l1.misses());
    EXPECT_EQ(a.l2.misses(), b.l2.misses());
    EXPECT_EQ(a.mc.invalidationMessages, b.mc.invalidationMessages);
    EXPECT_EQ(a.mc.totalInterCoreConflictMisses(),
              b.mc.totalInterCoreConflictMisses());
    EXPECT_EQ(a.mc.totalL2EvictionsByOthers(),
              b.mc.totalL2EvictionsByOthers());
    for (std::size_t c = 0; c < a.mc.cores.size(); ++c) {
        EXPECT_EQ(a.mc.cores[c].l1.misses(), b.mc.cores[c].l1.misses())
            << c;
        EXPECT_EQ(a.mc.cores[c].interCoreConflictMisses,
                  b.mc.cores[c].interCoreConflictMisses)
            << c;
    }
}

} // anonymous namespace
} // namespace cac
