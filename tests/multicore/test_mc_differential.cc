/**
 * @file
 * Differential tests pinning the multicore system to its references:
 *
 *  - a 1-core "mc:" target is *bit-identical* to the plain "2lvl:"
 *    hierarchy on every registry organization — same L1/L2 functional
 *    stats, same hole bookkeeping, access for access. This is the
 *    contract that makes every multicore miss-ratio delta attributable
 *    to coherence and sharing, never to a diverging data path;
 *  - randomized seeded interleavings of per-core streams conserve the
 *    issued work: global load/store totals equal the per-core sums,
 *    per-core rows depend only on the core's own stream content (not
 *    on the interleaving order), and the invariants (SWMR, Inclusion)
 *    hold at the end;
 *  - the shared L2 holds only lines the cores ever fetched: probing
 *    the translations of never-accessed pages misses.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/sim_target.hh"
#include "multicore/mc_target.hh"
#include "workloads/spec_proxy.hh"

namespace cac
{
namespace
{

Trace
proxyTrace()
{
    static const Trace trace = buildSpecProxy("swim", 40000);
    return trace;
}

TargetStats
replayThrough(const std::string &label, const Trace &trace)
{
    auto target = OrgRegistry::global().buildTarget(label, TargetSpec{});
    target->replay(trace.data(), trace.size());
    target->finish();
    return target->stats();
}

void
expectCacheStatsEqual(const CacheStats &a, const CacheStats &b,
                      const std::string &label)
{
    EXPECT_EQ(a.loads, b.loads) << label;
    EXPECT_EQ(a.stores, b.stores) << label;
    EXPECT_EQ(a.loadMisses, b.loadMisses) << label;
    EXPECT_EQ(a.storeMisses, b.storeMisses) << label;
    EXPECT_EQ(a.fills, b.fills) << label;
    EXPECT_EQ(a.evictions, b.evictions) << label;
    EXPECT_EQ(a.writebacks, b.writebacks) << label;
    EXPECT_EQ(a.invalidations, b.invalidations) << label;
    EXPECT_EQ(a.firstProbeHits, b.firstProbeHits) << label;
    EXPECT_EQ(a.secondProbeHits, b.secondProbeHits) << label;
}

void
expectHoleStatsEqual(const HoleStats &a, const HoleStats &b,
                     const std::string &label)
{
    EXPECT_EQ(a.l1Misses, b.l1Misses) << label;
    EXPECT_EQ(a.l2Misses, b.l2Misses) << label;
    EXPECT_EQ(a.l2Replacements, b.l2Replacements) << label;
    EXPECT_EQ(a.inclusionInvalidates, b.inclusionInvalidates) << label;
    EXPECT_EQ(a.holesCreated, b.holesCreated) << label;
    EXPECT_EQ(a.holeRefills, b.holeRefills) << label;
    EXPECT_EQ(a.externalInvalidates, b.externalInvalidates) << label;
    EXPECT_EQ(a.aliasRemovals, b.aliasRemovals) << label;
}

TEST(McDifferential, OneCoreIsBitIdenticalToTwoLevelOnEveryOrg)
{
    const Trace trace = proxyTrace();
    for (const std::string &org :
         OrgRegistry::global().exampleLabels()) {
        const TargetStats two =
            replayThrough("2lvl:" + org + "/a4", trace);
        const TargetStats one =
            replayThrough("mc:1x" + org + "/a4", trace);
        ASSERT_TRUE(one.hasMultiCore) << org;
        ASSERT_TRUE(one.hasHierarchy) << org;
        expectCacheStatsEqual(one.l1, two.l1, org + " L1");
        expectCacheStatsEqual(one.l2, two.l2, org + " L2");
        expectHoleStatsEqual(one.holes, two.holes, org + " holes");
        // One core has nobody to cohere with.
        EXPECT_EQ(one.mc.interventions, 0u) << org;
        EXPECT_EQ(one.mc.invalidationMessages, 0u) << org;
        EXPECT_EQ(one.mc.totalInterCoreConflictMisses(), 0u) << org;
        // The single per-core row *is* the aggregate.
        ASSERT_EQ(one.mc.cores.size(), 1u) << org;
        expectCacheStatsEqual(one.mc.cores[0].l1, two.l1,
                              org + " core row");
    }
}

/** Deterministic per-core stream inside core @p c's ASID window. */
std::vector<std::uint64_t>
coreStream(unsigned c, std::size_t n, std::uint64_t window)
{
    std::vector<std::uint64_t> addrs;
    addrs.reserve(n);
    std::uint64_t lcg = 0x9E3779B97F4A7C15ull * (c + 1);
    for (std::size_t i = 0; i < n; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        // A 64KB footprint per core: small enough to rereference,
        // large enough to stress the shared L2.
        addrs.push_back(c * window + ((lcg >> 24) & 0xFFFFull));
    }
    return addrs;
}

/**
 * Interleave the per-core streams in a seed-dependent order and drive
 * the mc target one address at a time through accessBatch (runs of 1
 * exercise the demultiplexer's worst case).
 */
TargetStats
replayInterleaved(const std::vector<std::vector<std::uint64_t>> &streams,
                  std::uint64_t seed, SimTarget &target)
{
    std::vector<std::size_t> pos(streams.size(), 0);
    std::uint64_t lcg = seed;
    for (;;) {
        // Pick a random core that still has addresses to issue.
        std::vector<unsigned> live;
        for (unsigned c = 0; c < streams.size(); ++c) {
            if (pos[c] < streams[c].size())
                live.push_back(c);
        }
        if (live.empty())
            break;
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const unsigned c = live[(lcg >> 33) % live.size()];
        // A short burst, as a scheduler quantum would produce.
        const std::size_t burst =
            std::min<std::size_t>(1 + ((lcg >> 20) & 7),
                                  streams[c].size() - pos[c]);
        target.accessBatch(streams[c].data() + pos[c], burst, false);
        pos[c] += burst;
    }
    target.finish();
    return target.stats();
}

TEST(McDifferential, InterleavingsConserveWorkAndKeepInvariants)
{
    TargetSpec spec;
    const std::uint64_t window = spec.mcWindowBytes;
    std::vector<std::vector<std::uint64_t>> streams;
    std::size_t issued = 0;
    for (unsigned c = 0; c < 4; ++c) {
        streams.push_back(coreStream(c, 12000, window));
        issued += streams.back().size();
    }

    std::vector<McCoreStats> reference;
    for (std::uint64_t seed : {1ull, 42ull, 0xFEEDull}) {
        auto built =
            OrgRegistry::global().buildTarget("mc:4xa2-Hp-Sk/a4", spec);
        auto *mc = dynamic_cast<MultiCoreTarget *>(built.get());
        ASSERT_NE(mc, nullptr);
        const TargetStats stats =
            replayInterleaved(streams, seed, *built);

        // Global totals equal the per-core sums equal the issued work.
        ASSERT_TRUE(stats.hasMultiCore);
        std::uint64_t core_accesses = 0;
        for (const McCoreStats &core : stats.mc.cores)
            core_accesses += core.l1.accesses();
        EXPECT_EQ(core_accesses, issued) << seed;
        EXPECT_EQ(stats.l1.accesses(), issued) << seed;
        EXPECT_EQ(stats.l1.stores, 0u) << seed;

        // Disjoint windows: sharing-driven coherence traffic is
        // impossible, only capacity interference remains.
        EXPECT_EQ(stats.mc.interventions, 0u) << seed;
        EXPECT_EQ(stats.mc.invalidationMessages, 0u) << seed;

        // Each core's row depends only on its own stream, so every
        // interleaving must produce the same per-core loads (misses
        // vary: the shared L2's contents depend on the order).
        if (reference.empty()) {
            reference = stats.mc.cores;
        } else {
            for (unsigned c = 0; c < 4; ++c) {
                EXPECT_EQ(stats.mc.cores[c].l1.loads,
                          reference[c].l1.loads)
                    << "seed " << seed << " core " << c;
            }
        }

        // Invariants hold at the end of any interleaving.
        EXPECT_TRUE(mc->system().checkCoherence()) << seed;
        EXPECT_TRUE(mc->system().checkInclusion()) << seed;
    }
}

TEST(McDifferential, SharedL2HoldsOnlyFetchedLines)
{
    TargetSpec spec;
    auto built =
        OrgRegistry::global().buildTarget("mc:2xa2/a4", spec);
    auto *mc = dynamic_cast<MultiCoreTarget *>(built.get());
    ASSERT_NE(mc, nullptr);

    std::vector<std::vector<std::uint64_t>> streams;
    for (unsigned c = 0; c < 2; ++c)
        streams.push_back(coreStream(c, 8000, spec.mcWindowBytes));
    replayInterleaved(streams, 7, *built);

    // The cores touched only the first 64KB of their windows. Pages
    // far above that were never fetched, so their translations must
    // miss in the shared L2 (and in both L1s).
    CoherentSystem &sys = mc->system();
    for (unsigned c = 0; c < 2; ++c) {
        for (unsigned p = 0; p < 32; ++p) {
            const std::uint64_t never =
                c * spec.mcWindowBytes + 0x100000ull + p * 4096;
            const std::uint64_t paddr = sys.pageMap().translate(never);
            EXPECT_FALSE(sys.l2().probe(paddr)) << never;
            EXPECT_FALSE(sys.l1(c).probe(never)) << never;
        }
    }
}

} // anonymous namespace
} // namespace cac
