/**
 * @file
 * Coherence litmus tests: small hand-written 2–4 core scripts driven
 * through CoherentSystem::access() with *shared* addresses (scenario
 * mixes never share lines — their ASID windows are disjoint — so the
 * protocol corners only show up under direct scripting). Each script
 * asserts the exact M/S/I transitions, the exact intervention and
 * invalidation counts, and re-checks the global invariants (SWMR,
 * directory consistency, Inclusion) after every step.
 *
 * Geometry notes: the page map is given a 64KB page so every script
 * address lives in page 0 and virtual distances survive translation
 * (paddr = page_base + offset). L2 conflicts are then scriptable: with
 * a direct-mapped 4KB L2 (128 sets x 32B), addresses 0x1000 apart
 * collide in L2 regardless of where page 0 landed physically.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc.hh"
#include "index/factory.hh"
#include "multicore/coherent_system.hh"

namespace cac
{
namespace
{

using LineState = CoherentSystem::LineState;

std::unique_ptr<CacheModel>
makeCache(std::uint64_t size, unsigned ways)
{
    const CacheGeometry geom(size, 32, ways);
    return std::make_unique<SetAssocCache>(
        geom,
        makeIndexFn(IndexKind::Modulo, geom.setBits(), ways, 14));
}

/** @p cores identical 1KB/2-way L1s over one @p l2_size L2. */
CoherentSystem
makeSystem(unsigned cores, std::uint64_t l2_size = 64 * 1024,
           unsigned l1_ways = 2, unsigned l2_ways = 2)
{
    std::vector<std::unique_ptr<CacheModel>> l1s;
    for (unsigned c = 0; c < cores; ++c)
        l1s.push_back(makeCache(1024, l1_ways));
    return CoherentSystem(std::move(l1s), makeCache(l2_size, l2_ways),
                          PageMap(64 * 1024), std::uint64_t{1} << 21);
}

/** All invariants that must hold after *every* protocol step. */
void
expectInvariants(const CoherentSystem &sys, const char *where)
{
    EXPECT_TRUE(sys.checkCoherence()) << where;
    EXPECT_TRUE(sys.checkInclusion()) << where;
}

TEST(CoherenceLitmus, StoreInstallsModifiedLoadInstallsShared)
{
    auto sys = makeSystem(2);
    const std::uint64_t A = 0x100, B = 0x200;

    sys.access(0, A, true); // store miss
    EXPECT_EQ(sys.state(0, A), LineState::Modified);
    EXPECT_EQ(sys.state(1, A), LineState::Invalid);
    expectInvariants(sys, "after store A");

    sys.access(0, B, false); // load miss
    EXPECT_EQ(sys.state(0, B), LineState::Shared);
    expectInvariants(sys, "after load B");

    const MultiCoreStats mc = sys.stats();
    EXPECT_EQ(mc.interventions, 0u);
    EXPECT_EQ(mc.invalidationMessages, 0u);
    EXPECT_EQ(mc.cores[0].upgrades, 0u); // installed M, never promoted
}

TEST(CoherenceLitmus, ReadInterventionDowngradesOwnerAndSkipsL2)
{
    auto sys = makeSystem(2);
    const std::uint64_t A = 0x100;

    sys.access(0, A, true); // core 0 owns A Modified
    const std::uint64_t l2_before = sys.l2().stats().accesses();

    sys.access(1, A, false); // core 1 read miss on the M line
    // Served L1-to-L1: the shared L2 saw no access at all.
    EXPECT_EQ(sys.l2().stats().accesses(), l2_before);
    // M -> S: the old owner keeps a Shared copy, the reader gets one.
    EXPECT_EQ(sys.state(0, A), LineState::Shared);
    EXPECT_EQ(sys.state(1, A), LineState::Shared);
    expectInvariants(sys, "after read intervention");

    const MultiCoreStats mc = sys.stats();
    EXPECT_EQ(mc.interventions, 1u);
    EXPECT_EQ(mc.cores[1].interventionsReceived, 1u);
    EXPECT_EQ(mc.cores[0].interventionsSupplied, 1u);
    EXPECT_EQ(mc.invalidationMessages, 0u); // a read invalidates nobody
}

TEST(CoherenceLitmus, WriteInterventionInvalidatesOwner)
{
    auto sys = makeSystem(2);
    const std::uint64_t A = 0x100;

    sys.access(0, A, true); // core 0 owns A Modified
    const std::uint64_t l2_before = sys.l2().stats().accesses();

    sys.access(1, A, true); // core 1 write miss on the M line
    EXPECT_EQ(sys.l2().stats().accesses(), l2_before);
    // Ownership migrates; the old owner's copy is shot down.
    EXPECT_EQ(sys.state(0, A), LineState::Invalid);
    EXPECT_EQ(sys.state(1, A), LineState::Modified);
    expectInvariants(sys, "after write intervention");

    const MultiCoreStats mc = sys.stats();
    EXPECT_EQ(mc.interventions, 1u);
    EXPECT_EQ(mc.cores[1].interventionsReceived, 1u);
    EXPECT_EQ(mc.cores[0].interventionsSupplied, 1u);
    EXPECT_EQ(mc.cores[0].invalidationsReceived, 1u);
    EXPECT_EQ(mc.invalidationMessages, 1u);
}

TEST(CoherenceLitmus, WriteHitUpgradeInvalidatesEverySharer)
{
    auto sys = makeSystem(4);
    const std::uint64_t A = 0x100;

    // Three cores read A: all Shared, no coherence traffic.
    for (unsigned c = 0; c < 3; ++c) {
        sys.access(c, A, false);
        EXPECT_EQ(sys.state(c, A), LineState::Shared) << c;
    }
    expectInvariants(sys, "after shared loads");
    ASSERT_EQ(sys.stats().invalidationMessages, 0u);

    // Core 0 writes its Shared copy: S -> M, both other copies die.
    sys.access(0, A, true);
    EXPECT_EQ(sys.state(0, A), LineState::Modified);
    EXPECT_EQ(sys.state(1, A), LineState::Invalid);
    EXPECT_EQ(sys.state(2, A), LineState::Invalid);
    EXPECT_EQ(sys.state(3, A), LineState::Invalid);
    expectInvariants(sys, "after upgrade");

    const MultiCoreStats mc = sys.stats();
    EXPECT_EQ(mc.cores[0].upgrades, 1u);
    EXPECT_EQ(mc.cores[1].invalidationsReceived, 1u);
    EXPECT_EQ(mc.cores[2].invalidationsReceived, 1u);
    EXPECT_EQ(mc.cores[3].invalidationsReceived, 0u); // never had a copy
    EXPECT_EQ(mc.invalidationMessages, 2u);
    EXPECT_EQ(mc.interventions, 0u); // hits intervene with nobody

    // Writing again while already Modified is free: no second upgrade.
    sys.access(0, A, true);
    EXPECT_EQ(sys.stats().cores[0].upgrades, 1u);
    EXPECT_EQ(sys.stats().invalidationMessages, 2u);
}

TEST(CoherenceLitmus, WriteMissInvalidatesSharers)
{
    auto sys = makeSystem(2);
    const std::uint64_t A = 0x100;

    sys.access(0, A, false); // core 0 holds A Shared
    sys.access(1, A, true);  // core 1 write *miss* (no owner exists)
    EXPECT_EQ(sys.state(0, A), LineState::Invalid);
    EXPECT_EQ(sys.state(1, A), LineState::Modified);
    expectInvariants(sys, "after write miss");

    const MultiCoreStats mc = sys.stats();
    EXPECT_EQ(mc.interventions, 0u); // nobody held it Modified
    EXPECT_EQ(mc.cores[0].invalidationsReceived, 1u);
    EXPECT_EQ(mc.invalidationMessages, 1u);
}

TEST(CoherenceLitmus, L1EvictionDropsOwnershipSilently)
{
    auto sys = makeSystem(2);
    // 1KB / 32B / 2 ways = 16 sets, so addresses 512 bytes apart share
    // an L1 set; three of them overflow the two ways and evict A.
    const std::uint64_t A = 0x0;

    sys.access(0, A, true); // Modified in core 0
    sys.access(0, A + 512, false);
    sys.access(0, A + 1024, false); // LRU evicts A
    EXPECT_EQ(sys.state(0, A), LineState::Invalid);
    expectInvariants(sys, "after evicting the owned line");

    // A peer miss on A now goes to the L2 — no stale intervention.
    const std::uint64_t l2_before = sys.l2().stats().accesses();
    sys.access(1, A, false);
    EXPECT_EQ(sys.stats().interventions, 0u);
    EXPECT_EQ(sys.l2().stats().accesses(), l2_before + 1);
    EXPECT_EQ(sys.state(1, A), LineState::Shared);
    expectInvariants(sys, "after peer load");
}

TEST(CoherenceLitmus, SharedL2EvictionAttributesInterCoreConflicts)
{
    // Direct-mapped 4KB L2: 0x1000-distant addresses collide in L2 but
    // coexist in the 4-way L1s (same L1 set, enough ways).
    std::vector<std::unique_ptr<CacheModel>> l1s;
    for (unsigned c = 0; c < 2; ++c)
        l1s.push_back(makeCache(1024, 4));
    CoherentSystem sys(std::move(l1s), makeCache(4096, 1),
                       PageMap(64 * 1024), std::uint64_t{1} << 21);
    const std::uint64_t A = 0x0, B = 0x1000;

    sys.access(0, A, false); // core 0 fills A into the L2
    expectInvariants(sys, "after A");

    // Core 1's fill of B evicts A from the L2; Inclusion then rips A
    // out of core 0's L1, leaving a hole, and the eviction is charged
    // to the line's filler as "lost to a peer".
    sys.access(1, B, false);
    EXPECT_EQ(sys.state(0, A), LineState::Invalid);
    expectInvariants(sys, "after B evicts A");
    {
        const MultiCoreStats mc = sys.stats();
        EXPECT_EQ(mc.cores[0].l2EvictionsByOthers, 1u);
        EXPECT_EQ(mc.cores[0].holes.inclusionInvalidates, 1u);
        EXPECT_EQ(mc.cores[0].holes.holesCreated, 1u);
        EXPECT_EQ(mc.cores[0].interCoreConflictMisses, 0u); // not yet
    }

    // Core 0 re-misses on the line core 1 pushed out: that is an
    // inter-core conflict miss (and a hole refill in the L1).
    sys.access(0, A, false);
    expectInvariants(sys, "after A returns");
    {
        const MultiCoreStats mc = sys.stats();
        EXPECT_EQ(mc.cores[0].interCoreConflictMisses, 1u);
        EXPECT_EQ(mc.cores[0].holes.holeRefills, 1u);
        // ...and A's fill evicted B right back: charged to core 1.
        EXPECT_EQ(mc.cores[1].l2EvictionsByOthers, 1u);
    }

    // A core re-evicting *its own* line is not an inter-core conflict:
    // core 0 brings B in (evicts its own A), then re-misses on A.
    sys.access(0, B, false);
    sys.access(0, A, false);
    EXPECT_EQ(sys.stats().cores[0].interCoreConflictMisses, 1u);
    expectInvariants(sys, "after self-conflict");
}

TEST(CoherenceLitmus, FlushL1sDropsOwnershipAndCopies)
{
    auto sys = makeSystem(2);
    const std::uint64_t A = 0x100, B = 0x200;
    sys.access(0, A, true);
    sys.access(1, B, false);
    sys.flushL1s();
    EXPECT_EQ(sys.state(0, A), LineState::Invalid);
    EXPECT_EQ(sys.state(1, B), LineState::Invalid);
    expectInvariants(sys, "after flush");

    // Post-flush misses go to the (still warm) L2, intervention-free.
    const std::uint64_t l2_hits_before = sys.l2().stats().hits();
    sys.access(1, A, false);
    EXPECT_EQ(sys.stats().interventions, 0u);
    EXPECT_EQ(sys.l2().stats().hits(), l2_hits_before + 1);
}

TEST(CoherenceLitmus, SwmrHoldsUnderRandomizedSharedStress)
{
    // 4 cores hammer 24 shared lines with a deterministic LCG mix of
    // loads and stores; every step re-checks SWMR + Inclusion. A small
    // L2 (4KB) keeps Inclusion evictions and interventions both hot.
    auto sys = makeSystem(4, 4096, 2, 1);
    std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
    std::uint64_t issued_loads = 0, issued_stores = 0;
    for (int step = 0; step < 4000; ++step) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        const unsigned core = (lcg >> 33) % 4;
        const std::uint64_t addr = ((lcg >> 40) % 24) * 32;
        const bool is_write = ((lcg >> 62) & 1) != 0;
        sys.access(core, addr, is_write);
        is_write ? ++issued_stores : ++issued_loads;
        ASSERT_TRUE(sys.checkCoherence()) << "step " << step;
        ASSERT_TRUE(sys.checkInclusion()) << "step " << step;
        // SWMR directly: at most one core holds any line Modified.
        unsigned owners = 0;
        for (unsigned c = 0; c < 4; ++c)
            owners += sys.state(c, addr) == LineState::Modified;
        ASSERT_LE(owners, 1u) << "step " << step;
    }
    // Per-core rows partition the issued stream exactly.
    const CacheStats total = sys.aggregateL1();
    EXPECT_EQ(total.loads, issued_loads);
    EXPECT_EQ(total.stores, issued_stores);
    // The stress mix must actually have exercised the protocol.
    const MultiCoreStats mc = sys.stats();
    EXPECT_GT(mc.interventions, 0u);
    EXPECT_GT(mc.invalidationMessages, 0u);
    std::uint64_t upgrades = 0;
    for (const McCoreStats &core : mc.cores)
        upgrades += core.upgrades;
    EXPECT_GT(upgrades, 0u);
}

} // anonymous namespace
} // namespace cac
