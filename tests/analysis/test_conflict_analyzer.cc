/**
 * @file
 * Tests for the GF(2) conflict analyzer: extraction correctness, the
 * paper's stride theorems reproduced analytically, and the stride-
 * freeness certificate generalizing tests/index/test_stride_free.
 */

#include <gtest/gtest.h>

#include "analysis/conflict_analyzer.hh"
#include "common/bits.hh"
#include "common/rng.hh"
#include "index/factory.hh"
#include "index/ipoly.hh"
#include "index/matrix_index.hh"
#include "index/xor_skew.hh"
#include "poly/catalog.hh"

namespace cac
{
namespace
{

/** Evaluate an extracted row matrix at @p addr. */
std::uint64_t
applyRows(const std::vector<std::uint64_t> &rows, std::uint64_t addr)
{
    std::uint64_t out = 0;
    for (std::size_t i = 0; i < rows.size(); ++i)
        out |= static_cast<std::uint64_t>(parity(rows[i] & addr)) << i;
    return out;
}

TEST(ConflictAnalyzer, ExtractionMatchesEveryInTreeScheme)
{
    const unsigned v = 14;
    std::vector<std::unique_ptr<IndexFn>> fns;
    fns.push_back(makeIndexFn(IndexKind::Modulo, 7, 2, v));
    fns.push_back(makeIndexFn(IndexKind::XorSkew, 7, 2, v));
    fns.push_back(makeIndexFn(IndexKind::IPoly, 7, 2, v));
    fns.push_back(makeIndexFn(IndexKind::IPolySkew, 7, 2, v));
    fns.push_back(MatrixIndex::randomFullRank(7, 2, v, 11));

    Rng rng(5);
    for (const auto &fn : fns) {
        const ConflictAnalysis a = analyzeIndex(*fn, v);
        ASSERT_TRUE(a.linear()) << fn->name();
        for (unsigned w = 0; w < fn->numWays(); ++w) {
            for (int i = 0; i < 200; ++i) {
                const std::uint64_t addr = rng.next() & mask(v);
                EXPECT_EQ(applyRows(a.ways[w].rows, addr),
                          fn->index(addr, w))
                    << fn->name() << " way " << w;
            }
        }
    }
}

TEST(ConflictAnalyzer, IrreduciblePolyEarnsTheCertificate)
{
    // Section 2.1.2: every power-of-two stride is conflict-free under
    // an irreducible polynomial modulus. The analyzer proves it from
    // rank alone; contrast with the exhaustive enumeration the
    // test_stride_free suite performs.
    for (unsigned m : {5u, 6u, 7u, 8u}) {
        IPolyIndex idx(m, 1, m + 7, /*skewed=*/false);
        const ConflictAnalysis a = analyzeIndex(idx, m + 7);
        EXPECT_TRUE(a.strideFreeCertificate()) << "m=" << m;
        EXPECT_EQ(a.predictedConflictScore(), 0u);
        for (const StridePrediction &s : a.ways[0].strides) {
            EXPECT_TRUE(s.conflictFree) << "k=" << s.strideLog2;
            EXPECT_EQ(s.distinctSets, std::uint64_t{1} << m);
            EXPECT_EQ(s.conflictClassSize, 1u);
        }
    }
}

TEST(ConflictAnalyzer, ConventionalIndexDegeneratesPredictably)
{
    // Bit selection loses exactly k rank bits at stride 2^k: a window
    // folds onto 2^(m-k) sets — the degeneration Figure 1 measures.
    const unsigned m = 7, v = 14;
    auto fn = makeIndexFn(IndexKind::Modulo, m, 1, v);
    const ConflictAnalysis a = analyzeIndex(*fn, v);
    EXPECT_FALSE(a.strideFreeCertificate());
    for (const StridePrediction &s : a.ways[0].strides) {
        const unsigned k = s.strideLog2;
        EXPECT_EQ(s.rank, m - k) << "k=" << k;
        EXPECT_EQ(s.conflictClassSize, std::uint64_t{1} << k);
        EXPECT_EQ(s.conflictFree, k == 0);
    }
    // Total lost rank: sum k over k = 0..v-m.
    unsigned expected = 0;
    for (unsigned k = 0; k + m <= v; ++k)
        expected += k;
    EXPECT_EQ(a.predictedConflictScore(), expected);
}

TEST(ConflictAnalyzer, ReducibleModulusFailsTheCertificate)
{
    // x^7 + x^3 is divisible by x: the same polynomial
    // test_stride_free shows colliding must fail analytically too.
    IPolyIndex idx({Gf2Poly{0x88}}, 14);
    const ConflictAnalysis a = analyzeIndex(idx, 14);
    EXPECT_FALSE(a.strideFreeCertificate());
    EXPECT_GT(a.predictedConflictScore(), 0u);
}

TEST(ConflictAnalyzer, NullSpaceMembersActuallyCollide)
{
    const unsigned v = 14;
    IPolyIndex idx(7, 2, v, /*skewed=*/true);
    const ConflictAnalysis a = analyzeIndex(idx, v);
    Rng rng(9);
    for (unsigned w = 0; w < 2; ++w) {
        ASSERT_EQ(a.ways[w].nullity, a.ways[w].nullBasis.size());
        for (std::uint64_t d : a.ways[w].nullBasis) {
            for (int i = 0; i < 50; ++i) {
                const std::uint64_t addr = rng.next() & mask(v);
                EXPECT_EQ(idx.index(addr, w), idx.index(addr ^ d, w));
            }
        }
    }
}

TEST(ConflictAnalyzer, SkewedPolynomialsShrinkTheHardConflictSpace)
{
    const unsigned v = 16;
    // Unskewed: both ways share one polynomial, so the intersection of
    // the null spaces is the whole null space (dimension v - m).
    IPolyIndex same(7, 2, v, /*skewed=*/false);
    const ConflictAnalysis a_same = analyzeIndex(same, v);
    EXPECT_EQ(a_same.hardConflictDim, v - 7);

    // Skewed: distinct irreducible moduli P0 != P1 only share multiples
    // of P0*P1, so the hard-conflict space drops to v - 2m.
    IPolyIndex skew(7, 2, v, /*skewed=*/true);
    const ConflictAnalysis a_skew = analyzeIndex(skew, v);
    EXPECT_EQ(a_skew.hardConflictDim, v - 14);
    EXPECT_LT(a_skew.hardConflictDim, a_same.hardConflictDim);
    EXPECT_EQ(a_skew.stackedRank, 14u);
}

TEST(ConflictAnalyzer, ReportMentionsTheVerdict)
{
    IPolyIndex good(7, 2, 14, true);
    EXPECT_NE(analyzeIndex(good, 14).report().find("PASS"),
              std::string::npos);
    auto bad = makeIndexFn(IndexKind::Modulo, 7, 2, 14);
    EXPECT_NE(analyzeIndex(*bad, 14).report().find("FAIL"),
              std::string::npos);
}

} // anonymous namespace
} // namespace cac
