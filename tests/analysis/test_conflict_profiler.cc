/**
 * @file
 * Tests for the conflict profiler, including the analyzer/profiler
 * equivalence the subsystem is built around: the per-set occupancy a
 * stride workload *measures* must equal the conflict classes the GF(2)
 * analyzer *predicts*.
 */

#include <memory>

#include <gtest/gtest.h>

#include "analysis/conflict_analyzer.hh"
#include "analysis/conflict_profiler.hh"
#include "cache/set_assoc.hh"
#include "core/sim_target.hh"
#include "index/factory.hh"
#include "index/matrix_index.hh"
#include "trace/builder.hh"
#include "workloads/stride.hh"

namespace cac
{
namespace
{

constexpr unsigned kSetBits = 7; // paper L1: 128 sets
constexpr unsigned kInputBits = 14;

/** A profiled paper-L1 cache running scheme @p kind. */
std::unique_ptr<ConflictProfiler>
makeProfiled(IndexKind kind, ProfilerOptions opt = {})
{
    const CacheGeometry geom = CacheGeometry::paperL1_8k();
    auto target = std::make_unique<CacheTarget>(
        std::make_unique<SetAssocCache>(
            geom, makeIndexFn(kind, kSetBits, geom.ways(), kInputBits)));
    auto profiled = std::make_unique<ConflictProfiler>(std::move(target),
                                                       geom, opt);
    profiled->attachIndex(
        makeIndexFn(kind, kSetBits, geom.ways(), kInputBits));
    return profiled;
}

/**
 * One aligned window of the power-of-two stride 2^k: 128 elements one
 * block apart times the stride, repeated over several sweeps (sweeps
 * revisit the same sets, so the occupied-set count stays the window
 * image).
 */
std::vector<std::uint64_t>
strideWindow(unsigned k)
{
    StrideWorkloadConfig wc;
    wc.numElements = std::size_t{1} << kSetBits;
    wc.elementBytes = 32; // one cache block per element
    wc.stride = std::uint64_t{1} << k;
    wc.sweeps = 4;
    wc.base = 1 << 20; // block base 2^15: clear in stride bit range
    return makeStrideAddressTrace(wc);
}

TEST(ConflictProfiler, MeasuredOccupancyMatchesAnalyzerPrediction)
{
    // The acceptance equivalence: for every scheme and every stride
    // 2^k whose window fits the hash input bits, the number of sets the
    // profiler sees occupied equals the 2^rank the analyzer predicts.
    for (IndexKind kind : {IndexKind::Modulo, IndexKind::Xor,
                           IndexKind::XorSkew, IndexKind::IPoly,
                           IndexKind::IPolySkew}) {
        auto fn = makeIndexFn(kind, kSetBits, 2, kInputBits);
        const ConflictAnalysis analysis = analyzeIndex(*fn, kInputBits);
        ASSERT_TRUE(analysis.linear());

        for (unsigned k = 0; k + kSetBits <= kInputBits; ++k) {
            auto profiled = makeProfiled(kind);
            const auto addrs = strideWindow(k);
            profiled->accessBatch(addrs.data(), addrs.size(), false);
            profiled->finish();
            const ConflictProfile &profile = profiled->profile();

            for (unsigned w = 0; w < 2; ++w) {
                EXPECT_EQ(profile.perWay[w].occupiedSets(),
                          analysis.ways[w].strides[k].distinctSets)
                    << indexKindName(kind) << " way " << w << " k=" << k;
            }
        }
    }
}

TEST(ConflictProfiler, ConflictMissAttributionSeparatesTheSchemes)
{
    // Stride 2^7 blocks: conventional indexing folds all 128 elements
    // onto one set (pure conflict misses); the working set is 128
    // blocks = 4KB, so the fully-associative shadow sees only the
    // compulsory pass. I-Poly should be near the shadow.
    const auto addrs = strideWindow(7);

    auto conventional = makeProfiled(IndexKind::Modulo);
    conventional->accessBatch(addrs.data(), addrs.size(), false);
    conventional->finish();
    const ConflictProfile &conv = conventional->profile();

    auto ipoly = makeProfiled(IndexKind::IPolySkew);
    ipoly->accessBatch(addrs.data(), addrs.size(), false);
    ipoly->finish();
    const ConflictProfile &poly = ipoly->profile();

    // Both replayed the same stream against the same-capacity shadow.
    EXPECT_EQ(conv.shadow.misses(), poly.shadow.misses());
    // Conventional: every post-warmup access conflicts. I-Poly: none.
    EXPECT_GT(conv.conflictMisses(), addrs.size() / 2);
    EXPECT_EQ(poly.conflictMisses(), 0u);
    EXPECT_GT(conv.conflictMissRatio(), 0.5);
}

TEST(ConflictProfiler, TopPairsExposeTheThrashingBlocks)
{
    const auto addrs = strideWindow(7);
    auto profiled = makeProfiled(IndexKind::Modulo);
    profiled->accessBatch(addrs.data(), addrs.size(), false);
    profiled->finish();

    const auto pairs = profiled->profile().topPairs(4);
    ASSERT_FALSE(pairs.empty());
    // The stride maps every element to one set: consecutive blocks of
    // the sweep are exactly 2^7 blocks apart and recur every sweep.
    EXPECT_EQ(pairs[0].blockB - pairs[0].blockA, std::uint64_t{1} << 7);
    EXPECT_GE(pairs[0].count, 3u);
}

TEST(ConflictProfiler, PairsRequireAnAllWayCollision)
{
    // Two blocks that share a way-0 set but are separated by way 1 can
    // coexist in a skewed cache — they must not be reported as a
    // conflicting pair. Way 0 selects the low 3 bits; way 1 the next 3.
    const CacheGeometry geom(512, 32, 2); // 8 sets, 2 ways
    std::vector<std::uint64_t> rows = {
        0b000001, 0b000010, 0b000100, // way 0: block bits [0, 3)
        0b001000, 0b010000, 0b100000, // way 1: block bits [3, 6)
    };
    auto make = [&] {
        return std::make_unique<MatrixIndex>(3, 2, 6, rows);
    };

    ProfilerOptions opt;
    opt.shadow = false;
    ConflictProfiler profiled(
        std::make_unique<CacheTarget>(
            std::make_unique<SetAssocCache>(geom, make())),
        geom, opt);
    profiled.attachIndex(make());

    // Blocks 0 and 8: way-0 sets equal (0), way-1 sets differ (0 vs 1).
    // Blocks 0 and 16: way-0 equal, way-1 differ (0 vs 2).
    std::vector<std::uint64_t> alternating;
    for (int i = 0; i < 16; ++i) {
        alternating.push_back(0);
        alternating.push_back(geom.byteAddr(8));
        alternating.push_back(geom.byteAddr(16));
    }
    profiled.accessBatch(alternating.data(), alternating.size(), false);
    profiled.finish();
    EXPECT_TRUE(profiled.profile().pairCounts.empty());

    // The same stream under a uniform (modulo) placement on the same
    // geometry collides in both ways and must be counted.
    ConflictProfiler uniform(
        std::make_unique<CacheTarget>(std::make_unique<SetAssocCache>(
            geom, std::make_unique<ModuloIndex>(3, 2))),
        geom, opt);
    uniform.attachIndex(std::make_unique<ModuloIndex>(3, 2));
    uniform.accessBatch(alternating.data(), alternating.size(), false);
    uniform.finish();
    EXPECT_FALSE(uniform.profile().pairCounts.empty());
}

TEST(ConflictProfiler, ChunkedReplayEqualsOneBatch)
{
    // The profiler must be insensitive to how the stream is delivered:
    // same profile for one big batch, many small batches, and a trace
    // replayed in ragged chunks.
    const auto addrs = strideWindow(3);

    auto whole = makeProfiled(IndexKind::XorSkew);
    whole->accessBatch(addrs.data(), addrs.size(), false);
    whole->finish();

    auto chunked = makeProfiled(IndexKind::XorSkew);
    for (std::size_t i = 0; i < addrs.size(); i += 17) {
        const std::size_t n = std::min<std::size_t>(17, addrs.size() - i);
        chunked->accessBatch(addrs.data() + i, n, false);
    }
    chunked->finish();

    Trace trace;
    TraceBuilder builder(trace);
    for (std::uint64_t addr : addrs)
        builder.load(addr, reg::r(1), reg::r(30));
    auto replayed = makeProfiled(IndexKind::XorSkew);
    for (std::size_t i = 0; i < trace.size(); i += 23) {
        const std::size_t n = std::min<std::size_t>(23, trace.size() - i);
        replayed->replay(trace.data() + i, n);
    }
    replayed->finish();

    const ConflictProfile &a = whole->profile();
    const ConflictProfile &b = chunked->profile();
    const ConflictProfile &c = replayed->profile();
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.accesses, c.accesses);
    EXPECT_EQ(a.target.misses(), b.target.misses());
    EXPECT_EQ(a.target.misses(), c.target.misses());
    EXPECT_EQ(a.shadow.misses(), b.shadow.misses());
    EXPECT_EQ(a.shadow.misses(), c.shadow.misses());
    for (unsigned w = 0; w < 2; ++w) {
        EXPECT_EQ(a.perWay[w].accesses, b.perWay[w].accesses);
        EXPECT_EQ(a.perWay[w].accesses, c.perWay[w].accesses);
    }
}

TEST(ConflictProfiler, OptionalPiecesCanBeDisabled)
{
    ProfilerOptions opt;
    opt.shadow = false;
    opt.pairs = false;
    const CacheGeometry geom = CacheGeometry::paperL1_8k();
    auto profiled = std::make_unique<ConflictProfiler>(
        std::make_unique<CacheTarget>(std::make_unique<SetAssocCache>(
            geom,
            makeIndexFn(IndexKind::IPoly, kSetBits, 2, kInputBits))),
        geom, opt);
    // No index attached either: the profiler still counts accesses and
    // forwards everything to the wrapped target.
    const auto addrs = strideWindow(2);
    profiled->accessBatch(addrs.data(), addrs.size(), false);
    profiled->finish();
    const ConflictProfile &profile = profiled->profile();
    EXPECT_EQ(profile.accesses, addrs.size());
    EXPECT_FALSE(profile.hasShadow);
    EXPECT_TRUE(profile.perWay.empty());
    EXPECT_TRUE(profile.pairCounts.empty());
    EXPECT_EQ(profile.conflictMisses(), 0u);
    EXPECT_EQ(profiled->stats().l1.accesses(), addrs.size());
}

} // anonymous namespace
} // namespace cac
