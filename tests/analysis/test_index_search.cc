/**
 * @file
 * Tests for the parallel index-search engine, including the PR's
 * acceptance run: >= 32 candidates on a SPEC-proxy trace must rank a
 * skewed I-Poly index at or above the bit-selection baseline on
 * measured conflict misses, reproducibly and at any thread count, and
 * the top pick's predicted conflict classes must agree with measured
 * per-set profiles.
 */

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "analysis/conflict_analyzer.hh"
#include "analysis/conflict_profiler.hh"
#include "analysis/index_search.hh"
#include "cache/set_assoc.hh"
#include "core/sim_target.hh"
#include "index/index_fn.hh"
#include "trace/io.hh"
#include "workloads/spec_proxy.hh"
#include "workloads/stride.hh"

namespace cac
{
namespace
{

SearchConfig
testConfig(unsigned threads)
{
    SearchConfig config;
    config.threads = threads;
    return config; // defaults: paper L1, 16 poly starts, 8 random seeds
}

std::shared_ptr<const Trace>
proxyTrace()
{
    // swim is one of the paper's three high-conflict programs: large
    // congruent arrays that thrash a conventional index.
    static const auto trace = std::make_shared<const Trace>(
        buildSpecProxy("swim", 60000, /*seed=*/1));
    return trace;
}

/** Locate @p label's row, or null (callers ASSERT on the result). */
const SearchResult *
findLabel(const std::vector<SearchResult> &results,
          const std::string &label)
{
    auto it = std::find_if(results.begin(), results.end(),
                           [&](const SearchResult &r) {
                               return r.label == label;
                           });
    return it != results.end() ? &*it : nullptr;
}

TEST(IndexSearch, GridHasAtLeast32CandidatesAcrossFamilies)
{
    IndexSearch search(testConfig(1));
    EXPECT_GE(search.candidates().size(), 32u);
    std::size_t mod = 0, hp = 0, hpsk = 0, rand = 0;
    for (const IndexCandidate &c : search.candidates()) {
        mod += c.kind == "mod";
        hp += c.kind == "hp";
        hpsk += c.kind == "hp-sk";
        rand += c.kind == "rand";
    }
    EXPECT_EQ(mod, 1u);
    EXPECT_GE(hp, 16u);
    EXPECT_GE(hpsk, 16u);
    EXPECT_GE(rand, 8u);
}

TEST(IndexSearch, SkewedIPolyRanksAtOrAboveBitSelectionOnSpecProxy)
{
    IndexSearch search(testConfig(2));
    const auto results = search.run(proxyTrace());
    ASSERT_GE(results.size(), 32u);

    const SearchResult *mod_row = findLabel(results, "mod");
    ASSERT_NE(mod_row, nullptr);
    const SearchResult &mod = *mod_row;
    // Best skewed I-Poly candidate (they are sorted, so the first one
    // found in rank order is the best).
    auto it = std::find_if(results.begin(), results.end(),
                           [](const SearchResult &r) {
                               return r.kind == "hp-sk";
                           });
    ASSERT_NE(it, results.end());

    // The headline acceptance: measured conflict misses put the skewed
    // polynomial index at or above the conventional baseline.
    EXPECT_LE(it->rank, mod.rank);
    EXPECT_LE(it->conflictMisses, mod.conflictMisses);
    // On a high-conflict proxy the gap is not marginal.
    EXPECT_GT(mod.conflictMisses, 0u);
    // Predicted and measured agree about the baseline's weakness.
    EXPECT_FALSE(mod.strideFree);
    EXPECT_GT(mod.predictedScore, 0u);
    EXPECT_TRUE(it->strideFree);
    EXPECT_EQ(it->predictedScore, 0u);
}

TEST(IndexSearch, ResultsAreReproducibleAcrossRunsAndThreadCounts)
{
    const auto a = IndexSearch(testConfig(1)).run(proxyTrace());
    const auto b = IndexSearch(testConfig(1)).run(proxyTrace());
    const auto c = IndexSearch(testConfig(4)).run(proxyTrace());
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].label, b[i].label);
        EXPECT_EQ(a[i].label, c[i].label);
        EXPECT_EQ(a[i].conflictMisses, b[i].conflictMisses);
        EXPECT_EQ(a[i].conflictMisses, c[i].conflictMisses);
        EXPECT_EQ(a[i].stats.misses(), c[i].stats.misses());
        EXPECT_EQ(a[i].way0OccupiedSets, c[i].way0OccupiedSets);
    }
}

TEST(IndexSearch, TopPickPredictionsMatchMeasuredProfiles)
{
    // Close the loop on the winner: for every power-of-two stride, the
    // occupancy a ConflictProfiler measures equals the conflict classes
    // the ConflictAnalyzer predicted for the top-ranked index.
    IndexSearch search(testConfig(2));
    const auto results = search.run(proxyTrace());
    const IndexCandidate *top = nullptr;
    for (const IndexCandidate &c : search.candidates()) {
        if (c.label == results[0].label)
            top = &c;
    }
    ASSERT_NE(top, nullptr);

    const SearchConfig config = testConfig(1);
    const auto fn = top->make();
    const ConflictAnalysis analysis = analyzeIndex(*fn, config.inputBits);
    ASSERT_TRUE(analysis.linear());

    for (unsigned k = 0; k + config.geometry.setBits() <= config.inputBits;
         k += 2) {
        StrideWorkloadConfig wc;
        wc.numElements = config.geometry.numSets();
        wc.elementBytes = config.geometry.blockBytes();
        wc.stride = std::uint64_t{1} << k;
        wc.sweeps = 2;
        wc.base = 1 << 20;
        const auto addrs = makeStrideAddressTrace(wc);

        ConflictProfiler profiled(
            std::make_unique<CacheTarget>(std::make_unique<SetAssocCache>(
                config.geometry, top->make())),
            config.geometry);
        profiled.attachIndex(top->make());
        profiled.accessBatch(addrs.data(), addrs.size(), false);
        profiled.finish();

        const ConflictProfile &profile = profiled.profile();
        for (unsigned w = 0; w < config.geometry.ways(); ++w) {
            EXPECT_EQ(profile.perWay[w].occupiedSets(),
                      analysis.ways[w].strides[k].distinctSets)
                << "way " << w << " k=" << k;
        }
    }
}

TEST(IndexSearch, StreamedTraceFileMatchesLoadedRun)
{
    // The streamed entry point must be result-identical to the loaded
    // one (the engine-wide streamed == loaded convention).
    SearchConfig config = testConfig(2);
    config.polyStarts = 4;
    config.randomSeeds = 2;
    IndexSearch search(config);

    const std::string path =
        (std::filesystem::temp_directory_path()
         / ("cac_search_stream." + std::to_string(getpid()) + ".trc"))
            .string();
    writeTrace(*proxyTrace(), path);

    const auto loaded = search.run(proxyTrace());
    const auto streamed = search.runTraceFile(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.size(), streamed.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].label, streamed[i].label);
        EXPECT_EQ(loaded[i].stats.misses(), streamed[i].stats.misses());
        EXPECT_EQ(loaded[i].conflictMisses, streamed[i].conflictMisses);
        EXPECT_EQ(loaded[i].way0OccupiedSets,
                  streamed[i].way0OccupiedSets);
    }
}

TEST(IndexSearch, CustomCandidatesJoinTheGrid)
{
    SearchConfig config = testConfig(1);
    config.polyStarts = 2;
    config.randomSeeds = 1;
    IndexSearch search(config);
    const std::size_t before = search.candidates().size();
    search.addCandidate({"custom-mod", "custom", [] {
                             return std::make_unique<ModuloIndex>(7, 2);
                         }});
    ASSERT_EQ(search.candidates().size(), before + 1);

    StrideWorkloadConfig wc;
    wc.stride = 128;
    const auto results = search.run(makeStrideAddressTrace(wc));
    EXPECT_EQ(results.size(), before + 1);
    const SearchResult *custom = findLabel(results, "custom-mod");
    const SearchResult *mod = findLabel(results, "mod");
    ASSERT_NE(custom, nullptr);
    ASSERT_NE(mod, nullptr);
    // Identical placement functions must earn identical measurements.
    EXPECT_EQ(custom->conflictMisses, mod->conflictMisses);
    EXPECT_EQ(custom->stats.misses(), mod->stats.misses());
}

TEST(IndexSearch, CsvHasHeaderAndOneRowPerCandidate)
{
    SearchConfig config = testConfig(2);
    config.polyStarts = 2;
    config.randomSeeds = 2;
    IndexSearch search(config);
    StrideWorkloadConfig wc;
    wc.stride = 64;
    const auto results = search.run(makeStrideAddressTrace(wc));
    const std::string csv = searchCsv(results);
    EXPECT_NE(csv.find("rank,candidate,kind"), std::string::npos);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(csv.begin(), csv.end(), '\n')),
              results.size() + 1);
}

} // anonymous namespace
} // namespace cac
