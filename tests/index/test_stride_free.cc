/**
 * @file
 * Property tests of the paper's central theoretical claim
 * (section 2.1.2): under polynomial-modulus placement, "all strides of
 * the form 2^k produce address sequences that are free from conflicts"
 * — when the strided stream is partitioned into M-long sub-sequences
 * (M = number of cache blocks), every sub-sequence maps to M distinct
 * sets.
 *
 * The algebra: within an aligned window, two elements differ by
 * (t1 XOR t2) * x^k with 0 < deg(t1 XOR t2) < m, and an irreducible P
 * of degree m divides neither factor, so their residues differ. We
 * verify this exhaustively for cache-sized parameters, plus a
 * low-offset base term (which XORs in below the stride bits and cancels
 * in differences), and contrast with conventional indexing which
 * degenerates for every k >= m.
 */

#include <set>

#include <gtest/gtest.h>

#include "index/factory.hh"
#include "index/ipoly.hh"
#include "poly/catalog.hh"

namespace cac
{
namespace
{

/** (set_bits m, stride_log2 k) sweep parameter. */
using StrideParam = std::tuple<unsigned, unsigned>;

class StrideFreedom : public ::testing::TestWithParam<StrideParam>
{
};

TEST_P(StrideFreedom, AlignedSubsequencesMapToDistinctSets)
{
    const auto [m, k] = GetParam();
    const std::uint64_t sets = std::uint64_t{1} << m;
    const unsigned input_bits = m + k + 1; // room for a full window
    IPolyIndex idx(m, 1, input_bits, /*skewed=*/false);

    // Partition the strided stream into M-long windows (window j holds
    // elements jM..jM+M-1) and check each window's image is M distinct
    // sets. A base offset below the stride does not disturb this.
    for (std::uint64_t base : {std::uint64_t{0},
                               (std::uint64_t{1} << k) - 1}) {
        for (std::uint64_t window = 0; window < 2; ++window) {
            std::set<std::uint64_t> seen;
            for (std::uint64_t t = 0; t < sets; ++t) {
                const std::uint64_t i = window * sets + t;
                const std::uint64_t block = base + (i << k);
                seen.insert(idx.index(block, 0));
            }
            EXPECT_EQ(seen.size(), sets)
                << "m=" << m << " k=" << k << " base=" << base
                << " window=" << window;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    PowerOf2Strides, StrideFreedom,
    ::testing::Combine(::testing::Values(5u, 6u, 7u, 8u),
                       ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u)));

TEST(StrideFreedomContrast, ConventionalDegeneratesForLargeStrides)
{
    // With stride 2^m blocks, conventional indexing maps *every*
    // element to the same set — the worst case motivating the paper.
    const unsigned m = 7;
    auto conv = makeIndexFn(IndexKind::Modulo, m, 1);
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 64; ++i)
        seen.insert(conv->index(i << m, 0));
    EXPECT_EQ(seen.size(), 1u);
}

TEST(StrideFreedomContrast, IPolySpreadsTheSameStream)
{
    const unsigned m = 7;
    IPolyIndex idx(m, 1, 14, false);
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 64; ++i)
        seen.insert(idx.index(i << m, 0));
    EXPECT_EQ(seen.size(), 64u);
}

TEST(StrideFreedomContrast, HoldsForEveryDegree7Polynomial)
{
    // The conflict-freedom property holds for any irreducible modulus,
    // not just the catalog's first: multiplication by x^k is injective
    // in the field.
    const unsigned m = 7;
    for (std::size_t p = 0; p < PolyCatalog::countIrreducible(m); ++p) {
        IPolyIndex idx({PolyCatalog::irreducible(m, p)}, 14);
        std::set<std::uint64_t> seen;
        for (std::uint64_t i = 0; i < 128; ++i)
            seen.insert(idx.index(i << 5, 0));
        EXPECT_EQ(seen.size(), 128u)
            << PolyCatalog::irreducible(m, p).toString();
    }
}

TEST(StrideFreedomContrast, ReduciblePolynomialBreaksTheGuarantee)
{
    // x^7 + x^3 (no constant term) is divisible by x: stride sequences
    // can collide. This is why the modulus "for best performance will
    // be an irreducible polynomial".
    IPolyIndex idx({Gf2Poly{0x88}}, 14); // x^7 + x^3, reducible
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 128; ++i)
        seen.insert(idx.index(i << 5, 0));
    EXPECT_LT(seen.size(), 128u);
}

TEST(StrideFreedomContrast, OddStridesAreNotPathologicalForIPoly)
{
    // Beyond the provable 2^k case, no stride in a modest sweep should
    // drive more than half the stream into one set.
    const unsigned m = 7;
    IPolyIndex idx(m, 1, 14, false);
    for (std::uint64_t stride : {3ull, 5ull, 7ull, 9ull, 33ull, 65ull,
                                 127ull, 129ull}) {
        std::vector<unsigned> counts(1 << m, 0);
        const int n = 64;
        for (int i = 0; i < n; ++i)
            ++counts[idx.index(i * stride, 0)];
        for (unsigned c : counts)
            EXPECT_LE(c, static_cast<unsigned>(n) / 2) << stride;
    }
}

} // anonymous namespace
} // namespace cac
