/**
 * @file
 * Tests for compiled index plans: every in-tree IndexFn must lower to a
 * plan that agrees with its virtual index() on every (address, way),
 * the compiler must pick the expected evaluation strategy, and the
 * reconfiguration epoch must invalidate stale plans.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "index/configurable.hh"
#include "index/factory.hh"
#include "index/index_fn.hh"
#include "index/index_plan.hh"
#include "index/ipoly.hh"
#include "index/xor_skew.hh"

namespace cac
{
namespace
{

/** 100k block addresses: uniform random plus power-of-two strides. */
std::vector<std::uint64_t>
testAddresses()
{
    std::vector<std::uint64_t> addrs;
    addrs.reserve(100000);
    Rng rng(7);
    while (addrs.size() < 60000)
        addrs.push_back(rng.next() & ((std::uint64_t{1} << 40) - 1));
    // Strided runs, including the pathological power-of-two strides.
    for (std::uint64_t stride : {1, 3, 8, 64, 128, 1024, 4096}) {
        for (std::uint64_t i = 0; i < 40000 / 7; ++i)
            addrs.push_back((std::uint64_t{1} << 20) + i * stride);
    }
    return addrs;
}

/**
 * Plan and virtual path agree on every (address, way), through the
 * scalar entry points AND the batch ones (indexSetsBatch for every
 * plan kind; indexPackedBatch + wayFromPacked for packed-capable
 * plans) — the batch path is the sweep engine's hot path, so any
 * divergence from index() would silently corrupt whole sweeps.
 */
void
expectPlanMatchesVirtual(const IndexFn &fn)
{
    const IndexPlan plan = fn.compile();
    ASSERT_EQ(plan.setBits(), fn.setBits());
    ASSERT_EQ(plan.numWays(), fn.numWays());

    const std::vector<std::uint64_t> addrs = testAddresses();
    std::vector<std::uint64_t> all(fn.numWays());
    for (std::uint64_t addr : addrs) {
        plan.indexAll(addr, all.data());
        for (unsigned w = 0; w < fn.numWays(); ++w) {
            const std::uint64_t want = fn.index(addr, w);
            ASSERT_EQ(plan.indexOne(addr, w), want)
                << fn.name() << " addr=" << addr << " way=" << w;
            ASSERT_EQ(all[w], want)
                << fn.name() << " addr=" << addr << " way=" << w;
        }
    }

    // Batch evaluation over the whole stream at once. The length is
    // not a multiple of the SIMD width, so the scalar tail runs too.
    std::vector<std::uint64_t> batch(addrs.size() * fn.numWays());
    plan.indexSetsBatch(addrs.data(), addrs.size(), batch.data());
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        for (unsigned w = 0; w < fn.numWays(); ++w) {
            ASSERT_EQ(batch[i * fn.numWays() + w],
                      fn.index(addrs[i], w))
                << fn.name() << " batch addr=" << addrs[i]
                << " way=" << w;
        }
    }

    if (plan.packedCapable()) {
        std::vector<std::uint64_t> packed(addrs.size());
        plan.indexPackedBatch(addrs.data(), addrs.size(), packed.data());
        for (std::size_t i = 0; i < addrs.size(); ++i) {
            ASSERT_EQ(packed[i], plan.packedOne(addrs[i]))
                << fn.name() << " addr=" << addrs[i];
            for (unsigned w = 0; w < fn.numWays(); ++w) {
                ASSERT_EQ(plan.wayFromPacked(packed[i], w),
                          fn.index(addrs[i], w))
                    << fn.name() << " packed addr=" << addrs[i]
                    << " way=" << w;
            }
        }
    }
}

TEST(IndexPlan, ModuloCompilesToShiftAndMask)
{
    ModuloIndex fn(7, 2);
    const IndexPlan plan = fn.compile();
    EXPECT_EQ(plan.kind(), IndexPlan::Kind::Modulo);
    EXPECT_TRUE(plan.uniform());
    expectPlanMatchesVirtual(fn);
}

TEST(IndexPlan, XorSkewCompilesToPackedTables)
{
    for (bool skewed : {false, true}) {
        XorSkewIndex fn(7, 2, skewed);
        const IndexPlan plan = fn.compile();
        EXPECT_EQ(plan.kind(), IndexPlan::Kind::Packed);
        EXPECT_EQ(plan.uniform(), !skewed);
        expectPlanMatchesVirtual(fn);
    }
}

TEST(IndexPlan, IPolyCompilesToPackedTables)
{
    for (bool skewed : {false, true}) {
        IPolyIndex fn(7, 2, 14, skewed);
        const IndexPlan plan = fn.compile();
        EXPECT_EQ(plan.kind(), IndexPlan::Kind::Packed);
        EXPECT_EQ(plan.uniform(), !skewed);
        expectPlanMatchesVirtual(fn);
    }
}

TEST(IndexPlan, WideAssociativityFallsBackToRowMasks)
{
    // 16 ways x 8 index bits = 128 packed bits > 64: the packed-table
    // form cannot hold all ways, so the compiler keeps row masks.
    XorSkewIndex fn(8, 16, true);
    const IndexPlan plan = fn.compile();
    EXPECT_EQ(plan.kind(), IndexPlan::Kind::RowMask);
    EXPECT_FALSE(plan.uniform());
    expectPlanMatchesVirtual(fn);
}

TEST(IndexPlan, OddGeometriesMatch)
{
    expectPlanMatchesVirtual(ModuloIndex(5, 3));
    expectPlanMatchesVirtual(XorSkewIndex(5, 7, true));
    expectPlanMatchesVirtual(IPolyIndex(8, 4, 17, true));
    expectPlanMatchesVirtual(IPolyIndex(10, 1, 20, false));
}

TEST(IndexPlan, EveryFactoryKindMatches)
{
    for (IndexKind kind : {IndexKind::Modulo, IndexKind::Xor,
                           IndexKind::XorSkew, IndexKind::IPoly,
                           IndexKind::IPolySkew}) {
        auto fn = makeIndexFn(kind, 7, 2, 14);
        expectPlanMatchesVirtual(*fn);
    }
}

TEST(IndexPlan, ConfigurableLowersEachModeAndBumpsEpoch)
{
    ConfigurableIndex fn(7, 2, 14);
    const std::uint64_t epoch0 = fn.planEpoch();
    EXPECT_EQ(fn.compile().kind(), IndexPlan::Kind::Modulo);
    expectPlanMatchesVirtual(fn);

    fn.setCatalogPolynomials(true);
    EXPECT_NE(fn.planEpoch(), epoch0);
    EXPECT_EQ(fn.compile().kind(), IndexPlan::Kind::Packed);
    expectPlanMatchesVirtual(fn);

    const std::uint64_t epoch1 = fn.planEpoch();
    fn.setConventional();
    EXPECT_NE(fn.planEpoch(), epoch1);
    expectPlanMatchesVirtual(fn);
}

TEST(IndexPlan, NonConfigurableFnsKeepConstantEpoch)
{
    ModuloIndex mod(7, 2);
    XorSkewIndex skew(7, 2, true);
    EXPECT_EQ(mod.planEpoch(), 0u);
    EXPECT_EQ(skew.planEpoch(), 0u);
}

/** Out-of-tree subclass without a compile() override. */
class UpperBitsIndex : public IndexFn
{
  public:
    UpperBitsIndex() : IndexFn(6, 2) {}
    std::uint64_t index(std::uint64_t block_addr,
                        unsigned way) const override
    {
        return (block_addr >> (4 + way)) & 0x3f;
    }
    bool isSkewed() const override { return true; }
    std::string name() const override { return "upper-bits"; }
};

TEST(IndexPlan, UnknownSubclassFallsBackToCallback)
{
    UpperBitsIndex fn;
    const IndexPlan plan = fn.compile();
    EXPECT_EQ(plan.kind(), IndexPlan::Kind::Callback);
    expectPlanMatchesVirtual(fn);
}

TEST(IndexPlan, ForceCallbackHookRoutesCompilePlan)
{
    ModuloIndex fn(7, 2);
    EXPECT_EQ(compilePlan(fn).kind(), IndexPlan::Kind::Modulo);
    IndexPlan::forceCallbackForTests(true);
    EXPECT_TRUE(IndexPlan::callbackForced());
    EXPECT_EQ(compilePlan(fn).kind(), IndexPlan::Kind::Callback);
    IndexPlan::forceCallbackForTests(false);
    EXPECT_FALSE(IndexPlan::callbackForced());
    EXPECT_EQ(compilePlan(fn).kind(), IndexPlan::Kind::Modulo);
}

} // anonymous namespace
} // namespace cac
