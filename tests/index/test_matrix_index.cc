/**
 * @file
 * Tests for the explicit-matrix placement function.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"
#include "index/matrix_index.hh"
#include "index/xor_skew.hh"
#include "poly/xor_matrix.hh"

namespace cac
{
namespace
{

TEST(MatrixIndex, EvaluatesRowMasksByParity)
{
    // Way 0: identity on the low 3 bits. Way 1: bit i = a_i XOR a_{i+3}.
    std::vector<std::uint64_t> rows = {
        0b000001, 0b000010, 0b000100, // way 0
        0b001001, 0b010010, 0b100100, // way 1
    };
    MatrixIndex idx(3, 2, 6, rows);
    EXPECT_TRUE(idx.isSkewed());
    for (std::uint64_t a = 0; a < 64; ++a) {
        EXPECT_EQ(idx.index(a, 0), a & 7u);
        EXPECT_EQ(idx.index(a, 1), (a ^ (a >> 3)) & 7u);
    }
    EXPECT_EQ(idx.maxFanIn(), 2u);
    EXPECT_EQ(idx.rowMask(1, 2), 0b100100u);
}

TEST(MatrixIndex, IdenticalWaysAreNotSkewed)
{
    std::vector<std::uint64_t> rows = {0b01, 0b10, 0b01, 0b10};
    MatrixIndex idx(2, 2, 2, rows);
    EXPECT_FALSE(idx.isSkewed());
}

TEST(MatrixIndex, CompiledPlanMatchesVirtualPath)
{
    auto idx = MatrixIndex::randomFullRank(7, 2, 14, 99);
    const IndexPlan plan = idx->compile();
    for (std::uint64_t a = 0; a < (1u << 14); a += 13) {
        for (unsigned w = 0; w < 2; ++w)
            EXPECT_EQ(plan.indexOne(a, w), idx->index(a, w));
    }
}

TEST(MatrixIndex, RandomFullRankIsFullRankAndDeterministic)
{
    for (std::uint64_t seed : {1ull, 2ull, 42ull}) {
        auto idx = MatrixIndex::randomFullRank(7, 2, 14, seed);
        for (unsigned w = 0; w < 2; ++w) {
            std::vector<std::uint64_t> way;
            for (unsigned i = 0; i < 7; ++i)
                way.push_back(idx->rowMask(w, i));
            EXPECT_EQ(gf2Rank(way), 7u) << "seed " << seed << " way " << w;
        }
        // Same seed, same matrix; the search engine relies on this.
        auto again = MatrixIndex::randomFullRank(7, 2, 14, seed);
        EXPECT_EQ(idx->rowMasks(), again->rowMasks());
        EXPECT_TRUE(idx->isSkewed());
    }
}

TEST(MatrixIndex, FullRankReachesEverySet)
{
    auto idx = MatrixIndex::randomFullRank(5, 1, 10, 3);
    std::vector<bool> hit(32, false);
    for (std::uint64_t a = 0; a < (1u << 10); ++a)
        hit[idx->index(a, 0)] = true;
    for (unsigned s = 0; s < 32; ++s)
        EXPECT_TRUE(hit[s]) << "set " << s;
}

TEST(MatrixIndex, RoundTripsXorSkewRowMasks)
{
    // A MatrixIndex built from another scheme's compiled row masks must
    // agree with that scheme everywhere: the matrix form is universal.
    XorSkewIndex skew(6, 2, true);
    std::vector<std::uint64_t> rows;
    const IndexPlan plan = skew.compile();
    for (unsigned w = 0; w < 2; ++w) {
        for (unsigned i = 0; i < 6; ++i) {
            // Recover row masks by probing the plan with basis vectors.
            std::uint64_t row = 0;
            for (unsigned j = 0; j < 12; ++j) {
                if (plan.indexOne(std::uint64_t{1} << j, w) >> i & 1)
                    row |= std::uint64_t{1} << j;
            }
            rows.push_back(row);
        }
    }
    MatrixIndex idx(6, 2, 12, rows);
    for (std::uint64_t a = 0; a < (1u << 12); a += 7) {
        for (unsigned w = 0; w < 2; ++w)
            EXPECT_EQ(idx.index(a, w), skew.index(a, w));
    }
}

} // anonymous namespace
} // namespace cac
