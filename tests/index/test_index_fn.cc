/**
 * @file
 * Tests for the placement-function implementations and factory.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "index/factory.hh"
#include "index/ipoly.hh"
#include "index/xor_skew.hh"
#include "poly/catalog.hh"

namespace cac
{
namespace
{

TEST(ModuloIndex, SelectsLowBits)
{
    ModuloIndex idx(7, 2);
    EXPECT_EQ(idx.index(0, 0), 0u);
    EXPECT_EQ(idx.index(127, 1), 127u);
    EXPECT_EQ(idx.index(128, 0), 0u);
    EXPECT_EQ(idx.index(0x12345, 0), 0x12345ull & 127);
}

TEST(ModuloIndex, SameForAllWays)
{
    ModuloIndex idx(7, 4);
    Rng rng(1);
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t block = rng.next();
        for (unsigned w = 1; w < 4; ++w)
            EXPECT_EQ(idx.index(block, w), idx.index(block, 0));
    }
    EXPECT_FALSE(idx.isSkewed());
}

TEST(XorSkewIndex, InRange)
{
    XorSkewIndex idx(7, 2, true);
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t block = rng.next();
        EXPECT_LT(idx.index(block, 0), 128u);
        EXPECT_LT(idx.index(block, 1), 128u);
    }
}

TEST(XorSkewIndex, WaysDifferWhenSkewed)
{
    XorSkewIndex idx(7, 2, true);
    Rng rng(3);
    int differing = 0;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t block = rng.next();
        differing += idx.index(block, 0) != idx.index(block, 1);
    }
    // Most blocks should land in different sets per way.
    EXPECT_GT(differing, 800);
    EXPECT_TRUE(idx.isSkewed());
}

TEST(XorSkewIndex, UnskewedWaysMatch)
{
    XorSkewIndex idx(7, 2, false);
    Rng rng(4);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t block = rng.next();
        EXPECT_EQ(idx.index(block, 0), idx.index(block, 1));
    }
    EXPECT_FALSE(idx.isSkewed());
}

TEST(XorSkewIndex, XorsTwoFields)
{
    XorSkewIndex idx(7, 1, false);
    // block = low 7 bits ^ next 7 bits
    const std::uint64_t block = (0x55ull << 7) | 0x2A;
    EXPECT_EQ(idx.index(block, 0), 0x55ull ^ 0x2A);
}

TEST(IPolyIndex, InRangeAndDeterministic)
{
    IPolyIndex idx(7, 2, 14, true);
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t block = rng.next();
        const std::uint64_t s0 = idx.index(block, 0);
        EXPECT_LT(s0, 128u);
        EXPECT_EQ(idx.index(block, 0), s0);
    }
}

TEST(IPolyIndex, SkewedUsesDistinctPolynomials)
{
    IPolyIndex idx(7, 2, 14, true);
    EXPECT_NE(idx.polynomial(0), idx.polynomial(1));
    EXPECT_TRUE(idx.isSkewed());

    IPolyIndex same(7, 2, 14, false);
    EXPECT_EQ(same.polynomial(0), same.polynomial(1));
    EXPECT_FALSE(same.isSkewed());
}

TEST(IPolyIndex, MatchesXorMatrix)
{
    IPolyIndex idx(7, 2, 14, true);
    Rng rng(6);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t block = rng.nextBelow(1 << 14);
        for (unsigned w = 0; w < 2; ++w)
            EXPECT_EQ(idx.index(block, w), idx.matrix(w).apply(block));
    }
}

TEST(IPolyIndex, ExplicitPolynomials)
{
    std::vector<Gf2Poly> polys = {PolyCatalog::irreducible(7, 3),
                                  PolyCatalog::irreducible(7, 5)};
    IPolyIndex idx(polys, 14);
    EXPECT_EQ(idx.polynomial(0), polys[0]);
    EXPECT_EQ(idx.polynomial(1), polys[1]);
    EXPECT_EQ(idx.setBits(), 7u);
    EXPECT_EQ(idx.numWays(), 2u);
}

TEST(IPolyIndex, UniformDistribution)
{
    // Pseudo-random placement should spread random blocks about
    // uniformly over the sets (chi-square-ish sanity bound).
    IPolyIndex idx(7, 1, 14, false);
    std::vector<unsigned> counts(128, 0);
    Rng rng(7);
    const int n = 128 * 200;
    for (int i = 0; i < n; ++i)
        ++counts[idx.index(rng.nextBelow(1 << 14), 0)];
    for (unsigned c : counts) {
        EXPECT_GT(c, 100u);
        EXPECT_LT(c, 320u);
    }
}

TEST(Factory, ParsesPaperLabels)
{
    EXPECT_EQ(parseIndexKind("a2"), IndexKind::Modulo);
    EXPECT_EQ(parseIndexKind("a4"), IndexKind::Modulo);
    EXPECT_EQ(parseIndexKind("mod"), IndexKind::Modulo);
    EXPECT_EQ(parseIndexKind("a2-Hx"), IndexKind::Xor);
    EXPECT_EQ(parseIndexKind("a2-Hx-Sk"), IndexKind::XorSkew);
    EXPECT_EQ(parseIndexKind("a2-Hp"), IndexKind::IPoly);
    EXPECT_EQ(parseIndexKind("a2-Hp-Sk"), IndexKind::IPolySkew);
    EXPECT_EQ(parseIndexKind("Hp-Sk"), IndexKind::IPolySkew);
}

TEST(Factory, BuildsEveryKind)
{
    for (IndexKind kind : {IndexKind::Modulo, IndexKind::Xor,
                           IndexKind::XorSkew, IndexKind::IPoly,
                           IndexKind::IPolySkew}) {
        auto fn = makeIndexFn(kind, 7, 2, 14);
        ASSERT_NE(fn, nullptr);
        EXPECT_EQ(fn->setBits(), 7u);
        EXPECT_EQ(fn->numWays(), 2u);
        EXPECT_LT(fn->index(0xABCDE, 0), 128u);
    }
}

TEST(Factory, NamesRoundTrip)
{
    auto fn = makeIndexFn(IndexKind::IPolySkew, 7, 2, 14);
    EXPECT_EQ(fn->name(), "a2-Hp-Sk");
    EXPECT_EQ(parseIndexKind(fn->name()), IndexKind::IPolySkew);
}

} // anonymous namespace
} // namespace cac
