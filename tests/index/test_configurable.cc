/**
 * @file
 * Tests for the runtime-configurable AND-XOR index function (paper
 * section 3.1, option 2: polynomial indexing only when page sizes
 * allow, conventional otherwise, flushing on each switch).
 */

#include <gtest/gtest.h>

#include "cache/set_assoc.hh"
#include "index/configurable.hh"
#include "index/ipoly.hh"
#include "poly/catalog.hh"

namespace cac
{
namespace
{

TEST(ConfigurableIndex, StartsConventional)
{
    ConfigurableIndex idx(7, 2, 14);
    EXPECT_FALSE(idx.polynomialMode());
    EXPECT_FALSE(idx.isSkewed());
    for (std::uint64_t block : {0ull, 127ull, 128ull, 0xABCDEull})
        EXPECT_EQ(idx.index(block, 0), block & 127);
}

TEST(ConfigurableIndex, MatchesIPolyAfterLoading)
{
    ConfigurableIndex cfg(7, 2, 14);
    cfg.setCatalogPolynomials(true);
    IPolyIndex fixed(7, 2, 14, true);
    for (std::uint64_t block = 0; block < 4096; block += 37) {
        EXPECT_EQ(cfg.index(block, 0), fixed.index(block, 0));
        EXPECT_EQ(cfg.index(block, 1), fixed.index(block, 1));
    }
    EXPECT_TRUE(cfg.polynomialMode());
    EXPECT_TRUE(cfg.isSkewed());
}

TEST(ConfigurableIndex, RevertsToConventional)
{
    ConfigurableIndex idx(7, 2, 14);
    idx.setCatalogPolynomials(false);
    idx.setConventional();
    EXPECT_FALSE(idx.polynomialMode());
    EXPECT_EQ(idx.index(0x1234, 1), 0x1234ull & 127);
}

TEST(ConfigurableIndex, GenerationBumpsOnEverySwitch)
{
    ConfigurableIndex idx(7, 2, 14);
    const auto g0 = idx.generation();
    idx.setCatalogPolynomials(true);
    EXPECT_GT(idx.generation(), g0);
    const auto g1 = idx.generation();
    idx.setConventional();
    EXPECT_GT(idx.generation(), g1);
    const auto g2 = idx.generation();
    idx.setPolynomials({PolyCatalog::irreducible(7, 2),
                        PolyCatalog::irreducible(7, 3)});
    EXPECT_GT(idx.generation(), g2);
}

TEST(ConfigurableIndex, UnskewedWhenPolynomialsMatch)
{
    ConfigurableIndex idx(7, 2, 14);
    idx.setCatalogPolynomials(false);
    EXPECT_TRUE(idx.polynomialMode());
    EXPECT_FALSE(idx.isSkewed());
}

TEST(ConfigurableIndex, NameTracksMode)
{
    ConfigurableIndex idx(7, 2, 14);
    EXPECT_EQ(idx.name(), "a2-cfg");
    idx.setCatalogPolynomials(true);
    EXPECT_EQ(idx.name(), "a2-cfg-Hp-Sk");
    idx.setCatalogPolynomials(false);
    EXPECT_EQ(idx.name(), "a2-cfg-Hp");
}

TEST(ConfigurableIndexDeath, RejectsWrongDegree)
{
    ConfigurableIndex idx(7, 2, 14);
    EXPECT_EXIT(idx.setPolynomials({PolyCatalog::irreducible(8, 0),
                                    PolyCatalog::irreducible(8, 1)}),
                ::testing::ExitedWithCode(1), "degree");
}

TEST(ConfigurableIndexDeath, RejectsWrongCount)
{
    ConfigurableIndex idx(7, 2, 14);
    EXPECT_EXIT(idx.setPolynomials({PolyCatalog::irreducible(7, 0)}),
                ::testing::ExitedWithCode(1), "per way");
}

TEST(ConfigurableIndex, Option2FlowSwitchAndFlush)
{
    // The paper's O/S flow: start conventional (small pages), later
    // enable polynomial indexing and flush, observe the conflict
    // behaviour change; revert and flush again.
    const CacheGeometry geom = CacheGeometry::paperL1_8k();
    auto owned = std::make_unique<ConfigurableIndex>(7, 2, 14);
    ConfigurableIndex *idx = owned.get();
    SetAssocCache cache(geom, std::move(owned));

    auto thrash = [&] {
        cache.resetStats();
        for (int round = 0; round < 40; ++round)
            for (std::uint64_t a : {0x0000ull, 0x1000ull, 0x2000ull})
                cache.access(a, false);
        return cache.stats().loadMisses;
    };

    // Conventional: three 4KB-congruent blocks thrash.
    EXPECT_GT(thrash(), 80u);

    // Large pages detected: enable I-Poly, flush, rerun.
    idx->setCatalogPolynomials(true);
    cache.flush();
    EXPECT_LE(thrash(), 6u);

    // Small pages return: back to conventional + flush.
    idx->setConventional();
    cache.flush();
    EXPECT_GT(thrash(), 80u);
}

} // anonymous namespace
} // namespace cac
