/**
 * @file
 * Tests for the victim cache (Jouppi-style DM + victim buffer).
 */

#include <gtest/gtest.h>

#include "cache/victim.hh"

namespace cac
{
namespace
{

CacheGeometry
dmGeom()
{
    return CacheGeometry(8 * 1024, 32, 1);
}

TEST(VictimCache, CatchesPingPongConflicts)
{
    // Two blocks 8KB apart alternate in one DM set: without a victim
    // buffer every access misses; with one, steady state all-hits.
    VictimCache c(dmGeom(), 4);
    for (int i = 0; i < 50; ++i) {
        c.access(0x0000, false);
        c.access(0x2000, false);
    }
    EXPECT_EQ(c.stats().loadMisses, 2u); // compulsory only
    EXPECT_GT(c.victimHits(), 0u);
}

TEST(VictimCache, BufferCapacityLimitsCoverage)
{
    // Six conflicting blocks overwhelm a 2-line victim buffer.
    VictimCache small(dmGeom(), 2);
    for (int round = 0; round < 20; ++round)
        for (std::uint64_t k = 0; k < 6; ++k)
            small.access(k * 0x2000, false);
    EXPECT_GT(small.stats().loadMisses, 60u);

    // An 8-line buffer holds all of them.
    VictimCache big(dmGeom(), 8);
    for (int round = 0; round < 20; ++round)
        for (std::uint64_t k = 0; k < 6; ++k)
            big.access(k * 0x2000, false);
    EXPECT_EQ(big.stats().loadMisses, 6u);
}

TEST(VictimCache, ProbeSeesBothStructures)
{
    VictimCache c(dmGeom(), 4);
    c.access(0x0000, false);
    c.access(0x2000, false); // evicts 0x0000 to the buffer
    EXPECT_TRUE(c.probe(0x0000));
    EXPECT_TRUE(c.probe(0x2000));
    EXPECT_FALSE(c.probe(0x4000));
}

TEST(VictimCache, SwapRestoresMainResidency)
{
    VictimCache c(dmGeom(), 4);
    c.access(0x0000, false);
    c.access(0x2000, false); // 0x0000 -> buffer
    c.access(0x0000, false); // victim hit, swap back
    // Another conflicting fill must now displace 0x0000 again, proving
    // it lives in the main array (its set), not the buffer.
    c.access(0x4000, false);
    EXPECT_TRUE(c.probe(0x0000)); // in buffer again
}

TEST(VictimCache, InvalidateCoversBuffer)
{
    VictimCache c(dmGeom(), 4);
    c.access(0x0000, false);
    c.access(0x2000, false); // 0x0000 in buffer
    EXPECT_TRUE(c.invalidate(0x0000));
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_TRUE(c.invalidate(0x2000)); // in main
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(VictimCache, FlushClearsBoth)
{
    VictimCache c(dmGeom(), 4);
    c.access(0x0000, false);
    c.access(0x2000, false);
    c.flush();
    EXPECT_FALSE(c.probe(0x0000));
    EXPECT_FALSE(c.probe(0x2000));
}

TEST(VictimCache, WriteNoAllocate)
{
    VictimCache c(dmGeom(), 4, /*write_allocate=*/false);
    c.access(0x1000, true);
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(VictimCache, NameMentionsBufferSize)
{
    VictimCache c(dmGeom(), 8);
    EXPECT_NE(c.name().find("victim+8"), std::string::npos);
}

} // anonymous namespace
} // namespace cac
