/**
 * @file
 * Equivalence of the batched access fast path with the scalar path:
 * for every registered organization, accessBatch() must leave the cache
 * with CacheStats bit-identical to an access()-per-address loop over
 * the same mixed load/store stream.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"
#include "core/registry.hh"

namespace cac
{
namespace
{

struct Op
{
    std::uint64_t addr;
    bool isWrite;
};

/** Deterministic mixed stream: strided sweeps + random traffic. */
std::vector<Op>
mixedStream()
{
    std::vector<Op> ops;
    Rng rng(1997);
    // Pathological power-of-two strides exercise conflict handling...
    for (int sweep = 0; sweep < 4; ++sweep) {
        for (std::uint64_t i = 0; i < 256; ++i) {
            ops.push_back({(1 << 20) + i * 4096, false});
            ops.push_back({(1 << 21) + i * 64, (i & 3) == 0});
        }
    }
    // ...and random traffic exercises eviction/writeback paths.
    for (int i = 0; i < 20000; ++i) {
        ops.push_back({rng.nextBelow(1 << 18), rng.nextBelow(4) == 0});
    }
    return ops;
}

void
expectStatsEqual(const CacheStats &a, const CacheStats &b,
                 const std::string &label)
{
    EXPECT_EQ(a.loads, b.loads) << label;
    EXPECT_EQ(a.stores, b.stores) << label;
    EXPECT_EQ(a.loadMisses, b.loadMisses) << label;
    EXPECT_EQ(a.storeMisses, b.storeMisses) << label;
    EXPECT_EQ(a.fills, b.fills) << label;
    EXPECT_EQ(a.evictions, b.evictions) << label;
    EXPECT_EQ(a.writebacks, b.writebacks) << label;
    EXPECT_EQ(a.invalidations, b.invalidations) << label;
    EXPECT_EQ(a.firstProbeHits, b.firstProbeHits) << label;
    EXPECT_EQ(a.secondProbeHits, b.secondProbeHits) << label;
}

class BatchEquivalence : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BatchEquivalence, BatchMatchesScalarOnMixedStream)
{
    const std::vector<Op> ops = mixedStream();

    for (bool write_allocate : {true, false}) {
        OrgSpec spec;
        spec.writeAllocate = write_allocate;
        auto scalar = makeOrganization(GetParam(), spec);
        auto batched = makeOrganization(GetParam(), spec);

        // Scalar reference: one virtual access() per operation.
        for (const Op &op : ops)
            scalar->access(op.addr, op.isWrite);

        // Batch path: maximal same-kind runs, exactly as the
        // experiment drivers dispatch them.
        std::vector<std::uint64_t> run;
        bool run_is_write = false;
        auto flush = [&] {
            if (!run.empty()) {
                batched->accessBatch(run.data(), run.size(),
                                     run_is_write);
                run.clear();
            }
        };
        for (const Op &op : ops) {
            if (op.isWrite != run_is_write) {
                flush();
                run_is_write = op.isWrite;
            }
            run.push_back(op.addr);
        }
        flush();

        expectStatsEqual(scalar->stats(), batched->stats(),
                         GetParam() + (write_allocate ? "/wa" : "/nwa"));
        // Contents must match too: the scalar cache's residency decides.
        for (std::uint64_t addr = 1 << 20; addr < (1 << 20) + 64 * 4096;
             addr += 4096) {
            EXPECT_EQ(scalar->probe(addr), batched->probe(addr))
                << GetParam() << " addr " << addr;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOrganizations, BatchEquivalence,
    ::testing::ValuesIn(standardComparisonLabels()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // anonymous namespace
} // namespace cac
