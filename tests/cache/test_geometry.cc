/**
 * @file
 * Tests for CacheGeometry derivations.
 */

#include <gtest/gtest.h>

#include "cache/geometry.hh"

namespace cac
{
namespace
{

TEST(CacheGeometry, PaperL1Shape)
{
    CacheGeometry g = CacheGeometry::paperL1_8k();
    EXPECT_EQ(g.sizeBytes(), 8u * 1024);
    EXPECT_EQ(g.blockBytes(), 32u);
    EXPECT_EQ(g.ways(), 2u);
    EXPECT_EQ(g.numBlocks(), 256u);
    EXPECT_EQ(g.numSets(), 128u);
    EXPECT_EQ(g.offsetBits(), 5u);
    EXPECT_EQ(g.setBits(), 7u);
}

TEST(CacheGeometry, SixteenKDoublesSets)
{
    CacheGeometry g = CacheGeometry::paperL1_16k();
    EXPECT_EQ(g.numSets(), 256u);
    EXPECT_EQ(g.setBits(), 8u);
}

TEST(CacheGeometry, DirectMapped)
{
    CacheGeometry g(256 * 1024, 32, 1);
    EXPECT_EQ(g.numSets(), g.numBlocks());
    EXPECT_EQ(g.setBits(), 13u);
}

TEST(CacheGeometry, FullyAssociativeShape)
{
    CacheGeometry g(8 * 1024, 32, 256);
    EXPECT_EQ(g.numSets(), 1u);
    EXPECT_EQ(g.setBits(), 0u);
}

TEST(CacheGeometry, BlockAddrRoundTrip)
{
    CacheGeometry g = CacheGeometry::paperL1_8k();
    EXPECT_EQ(g.blockAddr(0), 0u);
    EXPECT_EQ(g.blockAddr(31), 0u);
    EXPECT_EQ(g.blockAddr(32), 1u);
    EXPECT_EQ(g.byteAddr(g.blockAddr(0xABCDE0)), 0xABCDE0ull & ~31ull);
}

TEST(CacheGeometry, ToStringReadable)
{
    EXPECT_EQ(CacheGeometry::paperL1_8k().toString(), "8KB 2-way 32B");
    EXPECT_EQ(CacheGeometry(256 * 1024, 32, 1).toString(),
              "256KB 1-way 32B");
}

TEST(CacheGeometryDeath, RejectsNonPowerOf2)
{
    EXPECT_EXIT(CacheGeometry(7777, 32, 2),
                ::testing::ExitedWithCode(1), "power");
}

TEST(CacheGeometryDeath, RejectsZeroWays)
{
    EXPECT_EXIT(CacheGeometry(8192, 32, 0),
                ::testing::ExitedWithCode(1), "way");
}

TEST(CacheGeometryDeath, RejectsIndivisibleCapacity)
{
    EXPECT_EXIT(CacheGeometry(8192, 32, 3),
                ::testing::ExitedWithCode(1), "");
}

} // anonymous namespace
} // namespace cac
