/**
 * @file
 * Tests for the replacement policies.
 */

#include <gtest/gtest.h>

#include "cache/replacement.hh"

namespace cac
{
namespace
{

/** Build a candidate list over the given states (all one set). */
std::vector<ReplCandidate>
candidatesFor(const std::vector<ReplState> &states, bool all_valid = true)
{
    std::vector<ReplCandidate> cands(states.size());
    for (std::size_t i = 0; i < states.size(); ++i) {
        cands[i].valid = all_valid;
        cands[i].state = &states[i];
        cands[i].set = 0;
        cands[i].way = static_cast<unsigned>(i);
    }
    return cands;
}

TEST(Replacement, InvalidCandidatePreferredByAll)
{
    for (ReplKind kind : {ReplKind::Lru, ReplKind::Fifo, ReplKind::Random,
                          ReplKind::Nru, ReplKind::TreePlru}) {
        auto policy = makeReplacementPolicy(kind, 4, 4);
        std::vector<ReplState> states(4);
        auto cands = candidatesFor(states);
        cands[2].valid = false;
        EXPECT_EQ(policy->chooseVictim(cands), 2u)
            << policy->name();
    }
}

TEST(Replacement, LruEvictsOldestTouch)
{
    auto policy = makeReplacementPolicy(ReplKind::Lru, 1, 4);
    std::vector<ReplState> states(4);
    for (unsigned i = 0; i < 4; ++i)
        policy->onAccess(states[i], 0, i, 10 + i);
    policy->onAccess(states[1], 0, 1, 100); // way 1 now MRU
    auto cands = candidatesFor(states);
    EXPECT_EQ(policy->chooseVictim(cands), 0u);
}

TEST(Replacement, LruWorksAcrossDifferentSets)
{
    // Skewed caches hand LRU candidates from different sets; the
    // policy must rank purely on timestamps.
    auto policy = makeReplacementPolicy(ReplKind::Lru, 8, 2);
    std::vector<ReplState> states(2);
    policy->onAccess(states[0], 3, 0, 50);
    policy->onAccess(states[1], 5, 1, 20);
    auto cands = candidatesFor(states);
    cands[0].set = 3;
    cands[1].set = 5;
    EXPECT_EQ(policy->chooseVictim(cands), 1u);
}

TEST(Replacement, FifoIgnoresTouches)
{
    auto policy = makeReplacementPolicy(ReplKind::Fifo, 1, 3);
    std::vector<ReplState> states(3);
    policy->onInsert(states[0], 0, 0, 1);
    policy->onInsert(states[1], 0, 1, 2);
    policy->onInsert(states[2], 0, 2, 3);
    // Touch way 0 repeatedly: FIFO must still evict it first.
    policy->onAccess(states[0], 0, 0, 99);
    auto cands = candidatesFor(states);
    EXPECT_EQ(policy->chooseVictim(cands), 0u);
}

TEST(Replacement, RandomIsDeterministicPerSeed)
{
    auto a = makeReplacementPolicy(ReplKind::Random, 1, 4, 7);
    auto b = makeReplacementPolicy(ReplKind::Random, 1, 4, 7);
    std::vector<ReplState> states(4);
    auto cands = candidatesFor(states);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a->chooseVictim(cands), b->chooseVictim(cands));
}

TEST(Replacement, RandomCoversAllWays)
{
    auto policy = makeReplacementPolicy(ReplKind::Random, 1, 4, 11);
    std::vector<ReplState> states(4);
    auto cands = candidatesFor(states);
    bool seen[4] = {};
    for (int i = 0; i < 200; ++i)
        seen[policy->chooseVictim(cands)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Replacement, NruEvictsUnreferencedFirst)
{
    auto policy = makeReplacementPolicy(ReplKind::Nru, 1, 3);
    std::vector<ReplState> states(3);
    for (unsigned i = 0; i < 3; ++i)
        policy->onInsert(states[i], 0, i, i);
    policy->onAccess(states[0], 0, 0, 10);
    policy->onAccess(states[2], 0, 2, 11);
    auto cands = candidatesFor(states);
    EXPECT_EQ(policy->chooseVictim(cands), 1u);
}

TEST(Replacement, NruAgesWhenAllReferenced)
{
    auto policy = makeReplacementPolicy(ReplKind::Nru, 1, 2);
    std::vector<ReplState> states(2);
    for (unsigned i = 0; i < 2; ++i) {
        policy->onInsert(states[i], 0, i, i);
        policy->onAccess(states[i], 0, i, 10 + i);
    }
    auto cands = candidatesFor(states);
    EXPECT_EQ(policy->chooseVictim(cands), 0u); // all set: clear + take 0
    // Aging cleared the reference bits.
    EXPECT_FALSE(states[0].referenced);
    EXPECT_FALSE(states[1].referenced);
}

TEST(Replacement, TreePlruPicksAnUntouchedWay)
{
    // Touch one way in each subtree (2 then 0): every tree bit now
    // points at the untouched sibling, so the victim must be one of
    // the untouched ways {1, 3} — tree PLRU's guarantee (it is an
    // approximation of LRU, not LRU itself).
    auto policy = makeReplacementPolicy(ReplKind::TreePlru, 2, 4);
    std::vector<ReplState> states(4);
    auto cands = candidatesFor(states);
    policy->onAccess(states[2], 0, 2, 1);
    policy->onAccess(states[0], 0, 0, 2);
    const std::size_t victim = policy->chooseVictim(cands);
    EXPECT_TRUE(victim == 1 || victim == 3) << victim;
}

TEST(Replacement, TreePlruNeverPicksJustTouched)
{
    auto policy = makeReplacementPolicy(ReplKind::TreePlru, 1, 8);
    std::vector<ReplState> states(8);
    auto cands = candidatesFor(states);
    for (unsigned w = 0; w < 8; ++w) {
        policy->onAccess(states[w], 0, w, w);
        EXPECT_NE(policy->chooseVictim(cands), w);
    }
}

TEST(Replacement, TreePlruSetsAreIndependent)
{
    auto policy = makeReplacementPolicy(ReplKind::TreePlru, 2, 2);
    std::vector<ReplState> states(2);
    // Touch way 1 in set 0 only.
    policy->onAccess(states[1], 0, 1, 5);
    auto set0 = candidatesFor(states);
    auto set1 = candidatesFor(states);
    for (auto &c : set1)
        c.set = 1;
    EXPECT_EQ(policy->chooseVictim(set0), 0u);
    // Set 1 is untouched: default victim is way 0 as well, but after
    // touching way 0 in set 1 it must flip there and not in set 0.
    policy->onAccess(states[0], 1, 0, 6);
    EXPECT_EQ(policy->chooseVictim(set1), 1u);
    EXPECT_EQ(policy->chooseVictim(set0), 0u);
}

TEST(Replacement, ParseLabels)
{
    EXPECT_EQ(parseReplKind("lru"), ReplKind::Lru);
    EXPECT_EQ(parseReplKind("fifo"), ReplKind::Fifo);
    EXPECT_EQ(parseReplKind("random"), ReplKind::Random);
    EXPECT_EQ(parseReplKind("nru"), ReplKind::Nru);
    EXPECT_EQ(parseReplKind("plru"), ReplKind::TreePlru);
}

TEST(ReplacementDeath, ParseRejectsUnknown)
{
    EXPECT_EXIT((void)parseReplKind("clock"),
                ::testing::ExitedWithCode(1), "unknown");
}

} // anonymous namespace
} // namespace cac
