/**
 * @file
 * Tests for the fully-associative LRU cache.
 */

#include <gtest/gtest.h>

#include "cache/fully_assoc.hh"

namespace cac
{
namespace
{

TEST(FullyAssocCache, NoConflictMissesByConstruction)
{
    // Any working set up to capacity hits in steady state, regardless
    // of address alignment — even the 4KB-congruent pattern that
    // destroys a conventional cache.
    FullyAssocCache c(8 * 1024, 32);
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t a = 0; a < 256 * 4096; a += 4096)
            c.access(a, false);
    EXPECT_EQ(c.stats().loadMisses, 256u); // compulsory only
}

TEST(FullyAssocCache, LruEvictionOrder)
{
    FullyAssocCache c(4 * 32, 32); // 4 blocks
    c.access(0 * 32, false);
    c.access(1 * 32, false);
    c.access(2 * 32, false);
    c.access(3 * 32, false);
    c.access(0 * 32, false);       // refresh block 0
    auto r = c.access(4 * 32, false); // evicts block 1 (LRU)
    ASSERT_TRUE(r.evictedAddr.has_value());
    EXPECT_EQ(*r.evictedAddr, 32u);
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(32));
}

TEST(FullyAssocCache, CapacityIsExact)
{
    FullyAssocCache c(8 * 1024, 32);
    for (std::uint64_t a = 0; a < 512 * 32; a += 32)
        c.access(a, false);
    unsigned resident = 0;
    for (std::uint64_t a = 0; a < 512 * 32; a += 32)
        resident += c.probe(a);
    EXPECT_EQ(resident, 256u);
}

TEST(FullyAssocCache, WriteNoAllocate)
{
    FullyAssocCache c(1024, 32, /*write_allocate=*/false);
    c.access(0x100, true);
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_EQ(c.stats().storeMisses, 1u);
}

TEST(FullyAssocCache, InvalidateAndFlush)
{
    FullyAssocCache c(1024, 32);
    c.access(0x100, false);
    c.access(0x200, false);
    EXPECT_TRUE(c.invalidate(0x100));
    EXPECT_FALSE(c.invalidate(0x100));
    EXPECT_TRUE(c.probe(0x200));
    c.flush();
    EXPECT_FALSE(c.probe(0x200));
}

TEST(FullyAssocCache, MatchesPaperReferenceRole)
{
    // Section 2.1: the fully-associative cache is the conflict-free
    // reference. For a strided stream that fits, it must see only the
    // compulsory misses.
    FullyAssocCache c(8 * 1024, 32);
    const std::uint64_t stride = 1 << 12;
    for (int round = 0; round < 8; ++round)
        for (std::uint64_t i = 0; i < 64; ++i)
            c.access((1 << 20) + i * stride, false);
    EXPECT_EQ(c.stats().loadMisses, 64u);
}

TEST(FullyAssocCache, Name)
{
    FullyAssocCache c(8 * 1024, 32);
    EXPECT_EQ(c.name(), "8KB 256-way 32B fully-assoc");
}

} // anonymous namespace
} // namespace cac
