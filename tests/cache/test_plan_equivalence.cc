/**
 * @file
 * End-to-end equivalence of the compiled-plan hot path: for every
 * registry organization, a cache built on compiled IndexPlans must
 * produce CacheStats identical to one forced onto the virtual
 * IndexFn::index() path (IndexPlan::forceCallbackForTests), over 100k
 * random + strided addresses with a mixed load/store pattern.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cache/set_assoc.hh"
#include "common/rng.hh"
#include "core/registry.hh"
#include "index/configurable.hh"
#include "index/index_plan.hh"

namespace cac
{
namespace
{

/** Scoped force of the Callback (virtual) compilation path. */
class ForceVirtualPath
{
  public:
    ForceVirtualPath() { IndexPlan::forceCallbackForTests(true); }
    ~ForceVirtualPath() { IndexPlan::forceCallbackForTests(false); }
};

/** 100k byte addresses: random region traffic plus strided sweeps. */
std::vector<std::uint64_t>
testAddresses()
{
    std::vector<std::uint64_t> addrs;
    addrs.reserve(100000);
    Rng rng(13);
    while (addrs.size() < 60000)
        addrs.push_back(rng.next() & ((std::uint64_t{1} << 24) - 1));
    for (std::uint64_t stride : {8, 32, 256, 1024, 2048, 4096, 8192}) {
        for (std::uint64_t i = 0; i < 40000 / 7; ++i)
            addrs.push_back((std::uint64_t{1} << 21) + i * stride);
    }
    return addrs;
}

/**
 * Drive the full access surface: scalar loads/stores, batch loads,
 * probes and invalidations, then return the stats.
 */
CacheStats
drive(CacheModel &cache, const std::vector<std::uint64_t> &addrs)
{
    for (std::size_t i = 0; i < addrs.size(); ++i)
        cache.access(addrs[i], i % 5 == 0); // every 5th access a store
    cache.accessBatch(addrs.data(), addrs.size() / 2, false);
    for (std::size_t i = 0; i < addrs.size(); i += 97)
        cache.invalidate(addrs[i]);
    cache.accessBatch(addrs.data() + addrs.size() / 2,
                      addrs.size() / 2, false);
    return cache.stats();
}

void
expectStatsEqual(const CacheStats &a, const CacheStats &b,
                 const std::string &label)
{
    EXPECT_EQ(a.loads, b.loads) << label;
    EXPECT_EQ(a.stores, b.stores) << label;
    EXPECT_EQ(a.loadMisses, b.loadMisses) << label;
    EXPECT_EQ(a.storeMisses, b.storeMisses) << label;
    EXPECT_EQ(a.fills, b.fills) << label;
    EXPECT_EQ(a.evictions, b.evictions) << label;
    EXPECT_EQ(a.writebacks, b.writebacks) << label;
    EXPECT_EQ(a.invalidations, b.invalidations) << label;
    EXPECT_EQ(a.firstProbeHits, b.firstProbeHits) << label;
    EXPECT_EQ(a.secondProbeHits, b.secondProbeHits) << label;
}

TEST(PlanEquivalence, EveryRegistryOrganizationIsStatsIdentical)
{
    const std::vector<std::uint64_t> addrs = testAddresses();

    // One example label per registry entry, plus wider/deeper family
    // members to cover 4/8-way and the RowMask fallback geometries.
    std::vector<std::string> labels =
        OrgRegistry::global().exampleLabels();
    for (const char *extra : {"a4", "a4-Hx-Sk", "a4-Hp-Sk", "a8-Hx-Sk",
                              "a2-Hx", "a2-Hp"}) {
        labels.push_back(extra);
    }

    OrgSpec spec;
    for (const std::string &label : labels) {
        CacheStats with_virtual;
        {
            ForceVirtualPath forced;
            auto cache = makeOrganization(label, spec);
            with_virtual = drive(*cache, addrs);
        }
        CacheStats with_plan;
        {
            auto cache = makeOrganization(label, spec);
            with_plan = drive(*cache, addrs);
        }
        expectStatsEqual(with_plan, with_virtual, label);
    }
}

/**
 * accessBatch() must be stats-identical to an access() loop over the
 * same stream, for every registry organization. Run lengths vary from
 * 1 to several thousand so the batch tiling (256-address index blocks)
 * is crossed at every alignment — this is the direct guard on the
 * precomputed-index fast path the sweep engine runs on.
 */
TEST(PlanEquivalence, BatchPathMatchesScalarPath)
{
    const std::vector<std::uint64_t> addrs = testAddresses();

    std::vector<std::string> labels =
        OrgRegistry::global().exampleLabels();
    for (const char *extra : {"a4", "a4-Hp-Sk", "a8-Hx-Sk"})
        labels.push_back(extra);

    OrgSpec spec;
    for (const std::string &label : labels) {
        auto scalar_cache = makeOrganization(label, spec);
        auto batch_cache = makeOrganization(label, spec);

        std::size_t pos = 0;
        std::size_t run = 1;
        bool write = false;
        while (pos < addrs.size()) {
            const std::size_t n = std::min(run, addrs.size() - pos);
            for (std::size_t i = pos; i < pos + n; ++i)
                scalar_cache->access(addrs[i], write);
            batch_cache->accessBatch(addrs.data() + pos, n, write);
            pos += n;
            write = !write;
            run = run * 3 + 1;
            if (run > 5000)
                run = 1;
        }
        expectStatsEqual(batch_cache->stats(), scalar_cache->stats(),
                         label + " batch-vs-scalar");
    }
}

TEST(PlanEquivalence, WriteBackAndNoAllocateVariants)
{
    const std::vector<std::uint64_t> addrs = testAddresses();
    OrgSpec spec;
    spec.writeAllocate = false;
    for (const std::string &label :
         {std::string("a2-Hp-Sk"), std::string("column-poly"),
          std::string("victim")}) {
        CacheStats with_virtual;
        {
            ForceVirtualPath forced;
            auto cache = makeOrganization(label, spec);
            with_virtual = drive(*cache, addrs);
        }
        CacheStats with_plan;
        {
            auto cache = makeOrganization(label, spec);
            with_plan = drive(*cache, addrs);
        }
        expectStatsEqual(with_plan, with_virtual, label + " no-WA");
    }
}

/**
 * A cache whose ConfigurableIndex is reprogrammed mid-run must pick up
 * the new mapping (stale-plan detection via planEpoch) and stay
 * stats-identical to the virtual path doing the same switches.
 */
TEST(PlanEquivalence, ConfigurableReprogramRecompiles)
{
    const std::vector<std::uint64_t> addrs = testAddresses();

    auto runSwitching = [&addrs] {
        const CacheGeometry geom(8 * 1024, 32, 2);
        auto index = std::make_unique<ConfigurableIndex>(geom.setBits(),
                                                         2, 14);
        ConfigurableIndex *cfg = index.get();
        SetAssocCache cache(geom, std::move(index));
        cache.accessBatch(addrs.data(), addrs.size() / 2, false);
        cfg->setCatalogPolynomials(true);
        cache.flush(); // required on every index-function switch
        cache.accessBatch(addrs.data() + addrs.size() / 2,
                          addrs.size() / 2, false);
        cfg->setConventional();
        cache.flush();
        cache.accessBatch(addrs.data(), addrs.size() / 2, false);
        return cache.stats();
    };

    CacheStats with_virtual;
    {
        ForceVirtualPath forced;
        with_virtual = runSwitching();
    }
    const CacheStats with_plan = runSwitching();
    expectStatsEqual(with_plan, with_virtual, "configurable switching");
}

} // anonymous namespace
} // namespace cac
