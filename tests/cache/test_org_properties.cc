/**
 * @file
 * Cross-organization property tests: invariants every CacheModel must
 * satisfy, instantiated over all ten organizations of the comparison
 * set (direct-mapped through fully associative). These catch contract
 * violations that organization-specific tests can miss.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/experiment.hh"
#include "core/organization.hh"

namespace cac
{
namespace
{

class OrgProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<CacheModel>
    make(bool write_allocate = true) const
    {
        OrgSpec spec;
        spec.writeAllocate = write_allocate;
        return makeOrganization(GetParam(), spec);
    }
};

TEST_P(OrgProperty, SecondAccessToSameBlockHits)
{
    auto cache = make();
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        const std::uint64_t addr = rng.nextBelow(1 << 22) & ~7ull;
        cache->access(addr, false);
        EXPECT_TRUE(cache->access(addr, false).hit) << addr;
    }
}

TEST_P(OrgProperty, ProbeAgreesWithAccessOutcome)
{
    auto cache = make();
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t addr = rng.nextBelow(1 << 18) & ~7ull;
        const bool present = cache->probe(addr);
        const bool hit = cache->access(addr, false).hit;
        EXPECT_EQ(present, hit);
    }
}

TEST_P(OrgProperty, ProbeIsSideEffectFree)
{
    auto cache = make();
    Rng rng(3);
    // Interleave probes with accesses; stats must count only accesses.
    std::uint64_t accesses = 0;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t addr = rng.nextBelow(1 << 18) & ~7ull;
        if (i % 3 == 0) {
            cache->access(addr, false);
            ++accesses;
        } else {
            cache->probe(addr);
        }
    }
    EXPECT_EQ(cache->stats().accesses(), accesses);
}

TEST_P(OrgProperty, ResidencyNeverExceedsCapacity)
{
    auto cache = make();
    for (std::uint64_t a = 0; a < (1 << 20); a += 32)
        cache->access(a, false);
    std::uint64_t resident = 0;
    for (std::uint64_t a = 0; a < (1 << 20); a += 32)
        resident += cache->probe(a);
    // The victim organization holds its buffer lines on top of the
    // main array, so allow the spec's default victim capacity.
    EXPECT_LE(resident, cache->geometry().numBlocks() + OrgSpec{}.victimBlocks);
    // And the cache should actually be holding a useful fraction.
    EXPECT_GE(resident, cache->geometry().numBlocks() / 2);
}

TEST_P(OrgProperty, InvalidateRemovesExactlyThatBlock)
{
    auto cache = make();
    // Two blocks in different sets under every organization (64 bytes
    // apart), so neither can evict the other.
    cache->access(0x10000, false);
    cache->access(0x10040, false);
    EXPECT_TRUE(cache->invalidate(0x10000));
    EXPECT_FALSE(cache->probe(0x10000));
    EXPECT_TRUE(cache->probe(0x10040));
    EXPECT_FALSE(cache->invalidate(0x10000)); // idempotent
}

TEST_P(OrgProperty, FlushEmptiesEverything)
{
    auto cache = make();
    Rng rng(4);
    for (int i = 0; i < 1000; ++i)
        cache->access(rng.nextBelow(1 << 18) & ~7ull, false);
    cache->flush();
    for (int i = 0; i < 1000; ++i)
        EXPECT_FALSE(cache->probe(rng.nextBelow(1 << 18) & ~7ull));
}

TEST_P(OrgProperty, MissCountsAreConsistent)
{
    auto cache = make();
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        cache->access(rng.nextBelow(1 << 19) & ~7ull, rng.chance(0.3));
    const CacheStats &s = cache->stats();
    EXPECT_EQ(s.accesses(), 5000u);
    EXPECT_EQ(s.hits() + s.misses(), s.accesses());
    EXPECT_LE(s.loadMisses, s.loads);
    EXPECT_LE(s.storeMisses, s.stores);
    EXPECT_GE(s.missRatio(), 0.0);
    EXPECT_LE(s.missRatio(), 1.0);
}

TEST_P(OrgProperty, WriteNoAllocateNeverCachesStoreMisses)
{
    auto cache = make(/*write_allocate=*/false);
    Rng rng(6);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t addr = rng.nextBelow(1 << 20) & ~7ull;
        if (!cache->probe(addr)) {
            cache->access(addr, true);
            EXPECT_FALSE(cache->probe(addr)) << addr;
        }
    }
}

TEST_P(OrgProperty, DeterministicReplay)
{
    auto a = make();
    auto b = make();
    Rng rng(7);
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 3000; ++i)
        addrs.push_back(rng.nextBelow(1 << 19) & ~7ull);
    runAddressStream(*a, addrs);
    runAddressStream(*b, addrs);
    EXPECT_EQ(a->stats().loadMisses, b->stats().loadMisses);
}

TEST_P(OrgProperty, SingleBlockWorkingSetAlwaysHitsAfterWarmup)
{
    auto cache = make();
    cache->access(0x4440, false);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(cache->access(0x4440 + (i % 4) * 8, false).hit);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrganizations, OrgProperty,
    ::testing::ValuesIn(standardComparisonLabels()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

} // anonymous namespace
} // namespace cac
