/**
 * @file
 * Tests for the MSHR file (lockup-free miss tracking).
 */

#include <vector>

#include <gtest/gtest.h>

#include "cache/mshr.hh"

namespace cac
{
namespace
{

TEST(MshrFile, AllocateAndFind)
{
    MshrFile m(8);
    EXPECT_EQ(m.find(0x100), nullptr);
    Mshr &e = m.allocate(0x100, 22);
    EXPECT_EQ(e.block, 0x100u);
    EXPECT_EQ(e.readyTick, 22u);
    EXPECT_EQ(e.targets, 1u);
    EXPECT_EQ(m.find(0x100), &e);
    EXPECT_EQ(m.inFlight(), 1u);
}

TEST(MshrFile, FullAfterCapacityAllocations)
{
    MshrFile m(8); // the paper's 8 outstanding misses
    for (std::uint64_t b = 0; b < 8; ++b) {
        EXPECT_FALSE(m.full());
        m.allocate(b, 100 + b);
    }
    EXPECT_TRUE(m.full());
    EXPECT_EQ(m.inFlight(), 8u);
}

TEST(MshrFile, SecondaryMissesMerge)
{
    MshrFile m(4);
    Mshr &e = m.allocate(0x40, 30);
    ++e.targets; // a second access to the in-flight line attaches
    EXPECT_EQ(m.find(0x40)->targets, 2u);
    EXPECT_EQ(m.inFlight(), 1u); // still one line in flight
}

TEST(MshrFile, RetireReadyReleasesAndFills)
{
    MshrFile m(4);
    m.allocate(0x40, 10);
    m.allocate(0x80, 20);
    std::vector<std::uint64_t> filled;
    m.retireReady(15, [&](std::uint64_t b) { filled.push_back(b); });
    ASSERT_EQ(filled.size(), 1u);
    EXPECT_EQ(filled[0], 0x40u);
    EXPECT_EQ(m.find(0x40), nullptr);
    EXPECT_NE(m.find(0x80), nullptr);
    EXPECT_EQ(m.inFlight(), 1u);
}

TEST(MshrFile, AnyReadyBy)
{
    MshrFile m(2);
    m.allocate(0x40, 50);
    EXPECT_FALSE(m.anyReadyBy(49));
    EXPECT_TRUE(m.anyReadyBy(50));
}

TEST(MshrFile, SlotsAreReusable)
{
    MshrFile m(2);
    m.allocate(0x40, 10);
    m.allocate(0x80, 10);
    m.retireReady(10, [](std::uint64_t) {});
    EXPECT_FALSE(m.full());
    m.allocate(0xC0, 30);
    m.allocate(0x100, 30);
    EXPECT_TRUE(m.full());
}

TEST(MshrFile, ClearDropsEverything)
{
    MshrFile m(4);
    m.allocate(0x40, 10);
    m.allocate(0x80, 10);
    m.clear();
    EXPECT_EQ(m.inFlight(), 0u);
    EXPECT_EQ(m.find(0x40), nullptr);
}

TEST(MshrFileDeath, DoubleAllocatePanics)
{
    MshrFile m(4);
    m.allocate(0x40, 10);
    EXPECT_DEATH(m.allocate(0x40, 20), "");
}

TEST(MshrFileDeath, AllocateWhenFullPanics)
{
    MshrFile m(1);
    m.allocate(0x40, 10);
    EXPECT_DEATH(m.allocate(0x80, 20), "full");
}

} // anonymous namespace
} // namespace cac
