/**
 * @file
 * Tests for the two-probe caches: hash-rehash and the paper's
 * column-associative cache with a polynomial second probe
 * (section 3.1, option 4).
 */

#include <gtest/gtest.h>

#include "cache/two_probe.hh"
#include "common/rng.hh"

namespace cac
{
namespace
{

CacheGeometry
dmGeom()
{
    return CacheGeometry(8 * 1024, 32, 1);
}

TEST(TwoProbeCache, RequiresDirectMapped)
{
    EXPECT_EXIT(TwoProbeCache(CacheGeometry(8 * 1024, 32, 2),
                              RehashKind::IPoly),
                ::testing::ExitedWithCode(1), "direct mapped");
}

constexpr std::uint64_t kBase = 0x40000 + 0x360;

TEST(TwoProbeCache, ResolvesTwoWayConflict)
{
    // Two co-mapped blocks: the poly rehash gives the cache pseudo
    // 2-way behaviour in a DM array. (Block 0 itself is degenerate —
    // its polynomial image is also 0 — so the conflict group sits at a
    // nonzero base, as real data would.)
    TwoProbeCache c(dmGeom(), RehashKind::IPoly);
    for (int i = 0; i < 50; ++i) {
        c.access(kBase, false);
        c.access(kBase + 0x2000, false);
    }
    EXPECT_LE(c.stats().loadMisses, 4u);
}

TEST(TwoProbeCache, SwapMovesHitsToFirstProbe)
{
    // The paper: "a typical probability of around 90% that a hit is
    // detected at the first probe" thanks to swapping. With a
    // dominant block re-accessed repeatedly, first-probe hits dominate.
    TwoProbeCache c(dmGeom(), RehashKind::IPoly);
    c.access(kBase, false);
    c.access(kBase + 0x2000, false); // displaces the first block
    for (int i = 0; i < 98; ++i)
        c.access(kBase + 0x2000, false);
    EXPECT_GT(c.firstProbeHitFraction(), 0.9);
}

TEST(TwoProbeCache, SecondProbeHitsAreCounted)
{
    TwoProbeCache c(dmGeom(), RehashKind::IPoly);
    c.access(kBase, false);
    c.access(kBase + 0x2000, false); // first block demoted to alt slot
    c.access(kBase, false);          // second-probe hit + swap
    EXPECT_GE(c.stats().secondProbeHits, 1u);
}

TEST(TwoProbeCache, FlipTopBitRehashStillCollidesOnWideConflicts)
{
    // Hash-rehash's second probe only doubles the set choices, so a
    // 4-deep conflict set still thrashes; the poly rehash spreads it.
    TwoProbeCache flip(dmGeom(), RehashKind::FlipTopBit);
    TwoProbeCache poly(dmGeom(), RehashKind::IPoly);
    for (int round = 0; round < 30; ++round) {
        for (std::uint64_t k = 0; k < 4; ++k) {
            flip.access(kBase + k * 0x2000, false);
            poly.access(kBase + k * 0x2000, false);
        }
    }
    EXPECT_GT(flip.stats().loadMisses, poly.stats().loadMisses);
    EXPECT_LE(poly.stats().loadMisses, 8u);
}

TEST(TwoProbeCache, HitRatioNotWorseThanPlainDmOnRandomTraffic)
{
    TwoProbeCache c(dmGeom(), RehashKind::IPoly);
    Rng rng(1);
    std::uint64_t misses_baseline = 0;
    // Random traffic in 2x capacity: roughly half should hit either
    // way; the two-probe cache must stay in that ballpark.
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        c.access(rng.nextBelow(16 * 1024) & ~31ull, false);
    misses_baseline = n / 2;
    EXPECT_LT(c.stats().loadMisses, misses_baseline * 1.3);
}

TEST(TwoProbeCache, ProbeChecksBothLocations)
{
    TwoProbeCache c(dmGeom(), RehashKind::IPoly);
    c.access(kBase, false);
    c.access(kBase + 0x2000, false); // first block at its alt index
    EXPECT_TRUE(c.probe(kBase));
    EXPECT_TRUE(c.probe(kBase + 0x2000));
    EXPECT_FALSE(c.probe(kBase + 0x6000));
}

TEST(TwoProbeCache, InvalidateEitherLocation)
{
    TwoProbeCache c(dmGeom(), RehashKind::IPoly);
    c.access(kBase, false);
    c.access(kBase + 0x2000, false);
    EXPECT_TRUE(c.invalidate(kBase));
    EXPECT_TRUE(c.invalidate(kBase + 0x2000));
    EXPECT_FALSE(c.probe(kBase));
    EXPECT_FALSE(c.probe(kBase + 0x2000));
}

TEST(TwoProbeCache, WriteNoAllocate)
{
    TwoProbeCache c(dmGeom(), RehashKind::IPoly, 14, false);
    c.access(0x1000, true);
    EXPECT_FALSE(c.probe(0x1000));
}

TEST(TwoProbeCache, FlushClears)
{
    TwoProbeCache c(dmGeom(), RehashKind::IPoly);
    c.access(kBase, false);
    c.flush();
    EXPECT_FALSE(c.probe(kBase));
}

TEST(TwoProbeCache, Names)
{
    EXPECT_NE(TwoProbeCache(dmGeom(), RehashKind::IPoly)
                  .name()
                  .find("column-assoc-poly"),
              std::string::npos);
    EXPECT_NE(TwoProbeCache(dmGeom(), RehashKind::FlipTopBit)
                  .name()
                  .find("hash-rehash"),
              std::string::npos);
}

} // anonymous namespace
} // namespace cac
