/**
 * @file
 * Tests for the set-associative / skewed cache model.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc.hh"
#include "common/rng.hh"
#include "index/factory.hh"

namespace cac
{
namespace
{

std::unique_ptr<SetAssocCache>
makeCache(IndexKind kind = IndexKind::Modulo,
          WriteAllocate wa = WriteAllocate::Yes, bool wb = false,
          const CacheGeometry &geom = CacheGeometry::paperL1_8k())
{
    return std::make_unique<SetAssocCache>(
        geom, makeIndexFn(kind, geom.setBits(), geom.ways(), 14),
        nullptr, wa, wb);
}

TEST(SetAssocCache, ColdMissThenHit)
{
    auto c = makeCache();
    EXPECT_FALSE(c->access(0x1000, false).hit);
    EXPECT_TRUE(c->access(0x1000, false).hit);
    EXPECT_TRUE(c->access(0x101F, false).hit); // same 32B block
    EXPECT_FALSE(c->access(0x1020, false).hit); // next block
    EXPECT_EQ(c->stats().loads, 4u);
    EXPECT_EQ(c->stats().loadMisses, 2u);
}

TEST(SetAssocCache, TwoWaysHoldTwoConflictingBlocks)
{
    auto c = makeCache();
    // Same set (4KB apart), two ways: both should stick.
    c->access(0x0000, false);
    c->access(0x1000, false);
    EXPECT_TRUE(c->access(0x0000, false).hit);
    EXPECT_TRUE(c->access(0x1000, false).hit);
}

TEST(SetAssocCache, ThirdConflictingBlockEvictsLru)
{
    auto c = makeCache();
    c->access(0x0000, false); // way A
    c->access(0x1000, false); // way B
    c->access(0x0000, false); // touch: 0x1000 is now LRU
    auto r = c->access(0x2000, false); // evicts 0x1000
    EXPECT_FALSE(r.hit);
    ASSERT_TRUE(r.evictedAddr.has_value());
    EXPECT_EQ(*r.evictedAddr, 0x1000u);
    EXPECT_TRUE(c->access(0x0000, false).hit);
    EXPECT_FALSE(c->access(0x1000, false).hit);
}

TEST(SetAssocCache, ProbeHasNoSideEffects)
{
    auto c = makeCache();
    c->access(0x0000, false);
    c->access(0x1000, false);
    // Probing 0x0000 must not refresh its LRU position.
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(c->probe(0x0000));
    c->access(0x2000, false); // LRU is 0x0000 (probes didn't touch)
    EXPECT_FALSE(c->probe(0x0000));
    EXPECT_TRUE(c->probe(0x1000));
    const CacheStats &s = c->stats();
    EXPECT_EQ(s.loads, 3u); // probes not counted
}

TEST(SetAssocCache, InvalidateRemovesBlock)
{
    auto c = makeCache();
    c->access(0x5000, false);
    EXPECT_TRUE(c->invalidate(0x5008)); // same block
    EXPECT_FALSE(c->probe(0x5000));
    EXPECT_FALSE(c->invalidate(0x5000)); // already gone
    EXPECT_EQ(c->stats().invalidations, 1u);
}

TEST(SetAssocCache, FlushEmptiesEverything)
{
    auto c = makeCache();
    for (std::uint64_t a = 0; a < 8192; a += 32)
        c->access(a, false);
    c->flush();
    for (std::uint64_t a = 0; a < 8192; a += 32)
        EXPECT_FALSE(c->probe(a));
}

TEST(SetAssocCache, WriteNoAllocateSkipsFill)
{
    auto c = makeCache(IndexKind::Modulo, WriteAllocate::No);
    auto r = c->access(0x3000, true);
    EXPECT_FALSE(r.hit);
    EXPECT_FALSE(r.filled);
    EXPECT_FALSE(c->probe(0x3000));
    EXPECT_EQ(c->stats().storeMisses, 1u);
}

TEST(SetAssocCache, WriteAllocateFills)
{
    auto c = makeCache(IndexKind::Modulo, WriteAllocate::Yes);
    c->access(0x3000, true);
    EXPECT_TRUE(c->probe(0x3000));
    EXPECT_TRUE(c->access(0x3000, true).hit);
}

TEST(SetAssocCache, WriteBackTracksDirtyEvictions)
{
    auto c = makeCache(IndexKind::Modulo, WriteAllocate::Yes, true);
    c->access(0x0000, true);  // dirty fill
    c->access(0x1000, false); // clean fill
    EXPECT_TRUE(c->isDirty(0x0000));
    EXPECT_FALSE(c->isDirty(0x1000));
    c->access(0x0000, false); // touch so 0x1000 is LRU
    auto r1 = c->access(0x2000, false); // evicts clean 0x1000
    EXPECT_FALSE(r1.evictedDirty);
    c->access(0x2000, false);
    auto r2 = c->access(0x3000, false); // evicts dirty 0x0000
    ASSERT_TRUE(r2.evictedAddr.has_value());
    EXPECT_EQ(*r2.evictedAddr, 0x0000u);
    EXPECT_TRUE(r2.evictedDirty);
    EXPECT_EQ(c->stats().writebacks, 1u);
}

TEST(SetAssocCache, FillBypassesAccessCounters)
{
    auto c = makeCache();
    c->fill(0x4000);
    EXPECT_TRUE(c->probe(0x4000));
    EXPECT_EQ(c->stats().loads, 0u);
    EXPECT_EQ(c->stats().fills, 1u);
}

TEST(SetAssocCache, SkewedPlacementStoresFullBlockAddress)
{
    // Under a skewed index the same block maps to different sets per
    // way; hits must still be exact-block matches.
    auto c = makeCache(IndexKind::IPolySkew);
    Rng rng(1);
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 64; ++i)
        addrs.push_back(rng.nextBelow(1 << 22) & ~31ull);
    for (auto a : addrs)
        c->access(a, false);
    // No false hits: a fresh distinct block must miss.
    std::uint64_t fresh = (1ull << 23) | 0x40;
    EXPECT_FALSE(c->access(fresh, false).hit);
}

TEST(SetAssocCache, SkewedAbsorbsConventionalConflicts)
{
    // Three blocks congruent mod 4KB thrash a conventional 2-way set
    // but coexist under skewed I-Poly placement.
    auto conv = makeCache(IndexKind::Modulo);
    auto poly = makeCache(IndexKind::IPolySkew);
    const std::uint64_t addrs[] = {0x0000, 0x1000, 0x2000};
    for (int round = 0; round < 50; ++round)
        for (auto a : addrs) {
            conv->access(a, false);
            poly->access(a, false);
        }
    EXPECT_GT(conv->stats().loadMisses, 100u); // thrash
    EXPECT_LE(poly->stats().loadMisses, 6u);   // compulsory-ish
}

TEST(SetAssocCache, CapacityBound)
{
    // Never hold more distinct blocks than the geometry allows.
    auto c = makeCache(IndexKind::IPolySkew);
    for (std::uint64_t a = 0; a < (1 << 20); a += 32)
        c->access(a, false);
    unsigned resident = 0;
    for (std::uint64_t a = 0; a < (1 << 20); a += 32)
        resident += c->probe(a);
    EXPECT_LE(resident, c->geometry().numBlocks());
}

TEST(SetAssocCache, StatsResetKeepsContents)
{
    auto c = makeCache();
    c->access(0x7000, false);
    c->resetStats();
    EXPECT_EQ(c->stats().loads, 0u);
    EXPECT_TRUE(c->probe(0x7000));
}

TEST(SetAssocCache, NameIncludesGeometryAndScheme)
{
    auto c = makeCache(IndexKind::IPolySkew);
    EXPECT_EQ(c->name(), "8KB 2-way 32B a2-Hp-Sk");
}

/** Replacement-policy sweep: the cache works with every policy. */
class SetAssocRepl : public ::testing::TestWithParam<ReplKind>
{
};

TEST_P(SetAssocRepl, HitsAndCapacityHoldForEveryPolicy)
{
    const CacheGeometry geom = CacheGeometry::paperL1_8k();
    auto cache = std::make_unique<SetAssocCache>(
        geom, makeIndexFn(IndexKind::Modulo, geom.setBits(),
                          geom.ways(), 14),
        makeReplacementPolicy(GetParam(), geom.numSets(), geom.ways()));
    // A working set half the cache must fully hit in steady state.
    for (int round = 0; round < 4; ++round)
        for (std::uint64_t a = 0; a < 4096; a += 32)
            cache->access(a, false);
    const CacheStats &s = cache->stats();
    EXPECT_EQ(s.loadMisses, 128u); // compulsory only
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SetAssocRepl,
                         ::testing::Values(ReplKind::Lru, ReplKind::Fifo,
                                           ReplKind::Random, ReplKind::Nru,
                                           ReplKind::TreePlru));

} // anonymous namespace
} // namespace cac
