/**
 * @file
 * Tests for the span tracer (obs/trace_event.hh): the disabled fast
 * path, nesting invariants (a child span is always contained in its
 * parent, exactly — both ends read the same truncating clock), ring
 * capacity + drop accounting, multi-thread collection, and the Chrome
 * trace-event JSON document shape.
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/manifest.hh"
#include "obs/trace_event.hh"

namespace cac::obs
{
namespace
{

TEST(Tracer, DisabledRecordsNothing)
{
    Tracer tracer;
    tracer.record("t", "span", 0, 1);
    EXPECT_TRUE(tracer.drain().empty());
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, EnableResetsEarlierSpans)
{
    Tracer tracer;
    tracer.enable();
    tracer.record("t", "old", 0, 1);
    tracer.enable(); // a new run: previous rings cleared
    tracer.record("t", "new", 0, 1);
    const std::vector<TraceEvent> events = tracer.drain();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "new");
}

TEST(Tracer, ScopedSpansNestExactly)
{
    Tracer &tracer = Tracer::global();
    tracer.enable();
    {
        ScopedSpan outer("test", "outer");
        {
            ScopedSpan inner("test", "inner", "detail-1");
        }
        {
            ScopedSpan inner2("test", "inner2");
        }
    }
    const std::vector<TraceEvent> events = tracer.drain();
    tracer.disable();
    tracer.clear();
    ASSERT_EQ(events.size(), 3u);

    // drain() sorts parents first: outer, then the children in order.
    EXPECT_STREQ(events[0].name, "outer");
    EXPECT_STREQ(events[1].name, "inner");
    EXPECT_STREQ(events[2].name, "inner2");
    EXPECT_EQ(events[1].detail, "detail-1");

    // Exact containment, no epsilon: both ends truncate one clock.
    for (int child : {1, 2}) {
        EXPECT_GE(events[child].startUs, events[0].startUs);
        EXPECT_LE(events[child].endUs, events[0].endUs);
        EXPECT_LE(events[child].startUs, events[child].endUs);
    }
    // The siblings are disjoint in program order.
    EXPECT_LE(events[1].endUs, events[2].startUs);
}

TEST(Tracer, RingFullCountsDrops)
{
    Tracer tracer;
    tracer.enable(/*ring_capacity=*/4);
    for (int i = 0; i < 10; ++i)
        tracer.record("t", "s", i, i + 1);
    EXPECT_EQ(tracer.drain().size(), 4u);
    EXPECT_EQ(tracer.dropped(), 6u);
    tracer.clear();
    EXPECT_EQ(tracer.dropped(), 0u);
    EXPECT_TRUE(tracer.drain().empty());
}

TEST(Tracer, ThreadsGetDistinctIds)
{
    Tracer tracer;
    tracer.enable();
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
        pool.emplace_back([&tracer] {
            tracer.record("t", "worker", 0, 1);
        });
    }
    for (std::thread &th : pool)
        th.join();
    const std::vector<TraceEvent> events = tracer.drain();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(tracer.threadCount(), 4u);
    std::vector<std::uint32_t> tids;
    for (const TraceEvent &e : events)
        tids.push_back(e.tid);
    std::sort(tids.begin(), tids.end());
    EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST(Tracer, ChromeJsonDocumentShape)
{
    std::vector<TraceEvent> events;
    events.push_back({"cat1", "parent", "", 0, 100, 0});
    events.push_back({"cat1", "child", "swim x a2", 10, 20, 0});

    RunManifest manifest = buildRunManifest("test");
    manifest.workload = "swim";
    const std::string json = chromeTraceJson(events, 3, &manifest);

    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"parent\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 100"), std::string::npos);
    EXPECT_NE(json.find("\"detail\": \"swim x a2\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"dropped_events\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"manifest\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"swim\""), std::string::npos);
}

TEST(Tracer, DrainSortsParentsBeforeChildren)
{
    Tracer tracer;
    tracer.enable();
    // Recorded child-first (RAII order), drained parent-first.
    tracer.record("t", "child", 10, 20);
    tracer.record("t", "parent", 10, 100);
    const std::vector<TraceEvent> events = tracer.drain();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_STREQ(events[0].name, "parent");
    EXPECT_STREQ(events[1].name, "child");
}

} // anonymous namespace
} // namespace cac::obs
