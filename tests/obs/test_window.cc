/**
 * @file
 * Tests for the windowed time-series sampler (obs/window.hh): window
 * closing at boundary pokes, the at-least-N quantization rule,
 * contiguous stream positions, the final partial window from
 * finish(), conflict-miss attribution through a ConflictProfiler
 * wrapper, and the JSON/CSV renderings.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/conflict_profiler.hh"
#include "core/registry.hh"
#include "core/sim_target.hh"
#include "obs/window.hh"
#include "trace/builder.hh"

namespace cac
{
namespace
{

/** @p n loads walking one 64-byte-strided street of addresses. */
Trace
loadTrace(std::size_t n)
{
    Trace trace;
    TraceBuilder builder(trace);
    for (std::size_t i = 0; i < n; ++i)
        builder.load((i * 64) & 0xfffff, reg::r(1), reg::r(30));
    return trace;
}

/** Replay @p trace in @p chunk-record slices, poking @p sampler. */
void
replayChunked(SimTarget &target, obs::WindowSampler &sampler,
              const Trace &trace, std::size_t chunk)
{
    for (std::size_t at = 0; at < trace.size(); at += chunk) {
        const std::size_t n = std::min(chunk, trace.size() - at);
        target.replay(trace.data() + at, n);
        sampler.sample();
    }
    target.finish();
    sampler.finish();
}

TEST(WindowSampler, ClosesWindowsAtBoundaries)
{
    const Trace trace = loadTrace(10000);
    CacheTarget target(makeOrganization("a2", OrgSpec{}));
    obs::WindowSampler sampler(target, 3000);
    replayChunked(target, sampler, trace, 1000);

    // Chunks of 1000 against a 3000-access window: closes at 3000,
    // 6000, 9000, and finish() flushes the final 1000 as a partial.
    const std::vector<obs::ObsWindow> &windows = sampler.windows();
    ASSERT_EQ(windows.size(), 4u);
    EXPECT_EQ(windows[0].endAccess, 3000u);
    EXPECT_EQ(windows[1].endAccess, 6000u);
    EXPECT_EQ(windows[2].endAccess, 9000u);
    EXPECT_EQ(windows[3].endAccess, 10000u);

    std::uint64_t prev_end = 0;
    std::uint64_t total_loads = 0;
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const obs::ObsWindow &w = windows[i];
        EXPECT_EQ(w.index, i);
        EXPECT_EQ(w.startAccess, prev_end);
        prev_end = w.endAccess;
        EXPECT_EQ(w.accesses(), w.endAccess - w.startAccess);
        EXPECT_EQ(w.stores, 0u);
        EXPECT_FALSE(w.hasConflict);
        EXPECT_FALSE(w.hasCoherence);
        total_loads += w.loads;
    }
    EXPECT_EQ(total_loads, 10000u);
}

TEST(WindowSampler, QuantizesToTheCrossingBoundary)
{
    // 2500-access window sampled every 1000 accesses: the window that
    // crosses keeps the overshoot, so edges land on poke boundaries.
    const Trace trace = loadTrace(6000);
    CacheTarget target(makeOrganization("a2", OrgSpec{}));
    obs::WindowSampler sampler(target, 2500);
    replayChunked(target, sampler, trace, 1000);

    const std::vector<obs::ObsWindow> &windows = sampler.windows();
    ASSERT_EQ(windows.size(), 2u);
    EXPECT_EQ(windows[0].endAccess, 3000u);
    EXPECT_EQ(windows[1].endAccess, 6000u);
    for (const obs::ObsWindow &w : windows)
        EXPECT_GE(w.accesses(), 2500u);
}

TEST(WindowSampler, FinishIsIdempotent)
{
    const Trace trace = loadTrace(1500);
    CacheTarget target(makeOrganization("a2", OrgSpec{}));
    obs::WindowSampler sampler(target, 1000);
    replayChunked(target, sampler, trace, 500);
    const std::size_t count = sampler.windows().size();
    sampler.finish();
    sampler.finish();
    EXPECT_EQ(sampler.windows().size(), count);
}

TEST(WindowSampler, MissRatioIsConsistentWithTargetStats)
{
    const Trace trace = loadTrace(8000);
    CacheTarget target(makeOrganization("a2", OrgSpec{}));
    obs::WindowSampler sampler(target, 2000);
    replayChunked(target, sampler, trace, 2000);

    std::uint64_t misses = 0;
    for (const obs::ObsWindow &w : sampler.windows()) {
        EXPECT_GE(w.missRatio(), 0.0);
        EXPECT_LE(w.missRatio(), 1.0);
        misses += w.misses();
    }
    EXPECT_EQ(misses, target.stats().l1.misses());
}

TEST(WindowSampler, ProfiledTargetsCarryConflictMisses)
{
    const Trace trace = loadTrace(4000);
    auto model = makeOrganization("dm", OrgSpec{});
    const CacheGeometry geometry = model->geometry();
    ConflictProfiler target(
        std::make_unique<CacheTarget>(std::move(model)), geometry);
    obs::WindowSampler sampler(target, 1000);
    replayChunked(target, sampler, trace, 1000);

    ASSERT_FALSE(sampler.windows().empty());
    for (const obs::ObsWindow &w : sampler.windows())
        EXPECT_TRUE(w.hasConflict);
}

TEST(WindowSampler, ShrinkingConflictAttributionClampsAtZero)
{
    // Conflict attribution (target misses beyond the fully-assoc
    // shadow's) is not monotonic: an LRU-hostile phase makes the
    // shadow miss faster than the target, shrinking the cumulative
    // count. The sampler must clamp the per-window delta, never wrap.
    Trace trace;
    TraceBuilder builder(trace);
    // Phase 1: two addresses aliasing one direct-mapped set — pure
    // conflict misses, the 256-line shadow holds both.
    for (std::size_t i = 0; i < 2000; ++i)
        builder.load(i % 2 ? 0x0 : 0x2000, reg::r(1), reg::r(30));
    // Phase 2: cyclic sweep one block wider than the shadow's
    // capacity — LRU misses every access while the direct-mapped
    // target hits almost everywhere, so cumulative attribution falls.
    for (std::size_t i = 0; i < 6000; ++i)
        builder.load((i % 257) * 32, reg::r(1), reg::r(30));

    auto model = makeOrganization("dm", OrgSpec{});
    const CacheGeometry geometry = model->geometry();
    ConflictProfiler target(
        std::make_unique<CacheTarget>(std::move(model)), geometry);
    obs::WindowSampler sampler(target, 2000);
    replayChunked(target, sampler, trace, 2000);

    // The pathology really happened: the end-of-run cumulative count
    // is below the phase-1 window's.
    const std::vector<obs::ObsWindow> &windows = sampler.windows();
    ASSERT_GE(windows.size(), 2u);
    EXPECT_GT(windows[0].conflictMisses, 0u);
    EXPECT_LT(target.profile().conflictMisses(),
              windows[0].conflictMisses);
    // And no window wrapped: a window can never attribute more
    // conflict misses than it has accesses.
    for (const obs::ObsWindow &w : windows)
        EXPECT_LE(w.conflictMisses, w.accesses());
}

TEST(WindowSampler, JsonAndCsvRenderings)
{
    const Trace trace = loadTrace(3000);
    CacheTarget target(makeOrganization("a2", OrgSpec{}));
    obs::WindowSampler sampler(target, 1000);
    replayChunked(target, sampler, trace, 1000);

    const std::string json = obs::windowsJson(sampler.windows());
    EXPECT_NE(json.find("\"index\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"miss_ratio\""), std::string::npos);
    EXPECT_EQ(json.find("\"conflict_misses\""), std::string::npos);

    const std::string csv = obs::windowsCsv(sampler.windows());
    EXPECT_EQ(csv.find("conflict"), std::string::npos);
    EXPECT_NE(csv.find("window,start,end,loads,stores"),
              std::string::npos);
    // Header + one row per window.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
              1 + static_cast<long>(sampler.windows().size()));
}

} // anonymous namespace
} // namespace cac
