/**
 * @file
 * Tests for the metrics registry (obs/metrics.hh): the disabled
 * fast path, per-thread shard merging that is deterministic at 1, 4
 * and 8 worker threads, gauge max-merge, log2-histogram bucketing and
 * quantiles on known distributions, reset(), and the JSON rendering.
 */

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace cac::obs
{
namespace
{

TEST(Metrics, DisabledUpdatesAreDropped)
{
    Registry reg;
    const Counter c = reg.counter("c");
    c.add(5);
    EXPECT_EQ(reg.snapshot().counter("c"), 0u);

    reg.setEnabled(true);
    c.add(5);
    EXPECT_EQ(reg.snapshot().counter("c"), 5u);

    reg.setEnabled(false);
    c.add(5);
    EXPECT_EQ(reg.snapshot().counter("c"), 5u);
}

/** The same deterministic workload fanned out over @p threads. */
MetricsSnapshot
runSharded(unsigned threads)
{
    Registry reg;
    reg.setEnabled(true);
    const Counter hits = reg.counter("hits");
    const Counter misses = reg.counter("misses");
    const Gauge depth = reg.gauge("depth");
    const Histogram lat = reg.histogram("latency");

    // 64 work items, each contributing fixed amounts; the partition
    // across threads must not change the merged totals.
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (unsigned item = t; item < 64; item += threads) {
                hits.add(item);
                misses.add(1);
                depth.set(item);
                lat.observe(item * 100);
            }
        });
    }
    for (std::thread &th : pool)
        th.join();
    return reg.snapshot();
}

TEST(Metrics, ShardMergeIsDeterministicAcrossThreadCounts)
{
    const MetricsSnapshot one = runSharded(1);
    EXPECT_EQ(one.counter("hits"), 64u * 63u / 2u);
    EXPECT_EQ(one.counter("misses"), 64u);
    ASSERT_EQ(one.gauges.size(), 1u);
    EXPECT_EQ(one.gauges[0].second, 63u); // max-merge high-water mark
    ASSERT_EQ(one.histograms.size(), 1u);
    EXPECT_EQ(one.histograms[0].count, 64u);

    for (unsigned threads : {4u, 8u}) {
        const MetricsSnapshot many = runSharded(threads);
        EXPECT_EQ(many.counters, one.counters) << threads << " threads";
        EXPECT_EQ(many.gauges, one.gauges) << threads << " threads";
        ASSERT_EQ(many.histograms.size(), one.histograms.size());
        EXPECT_EQ(many.histograms[0].count, one.histograms[0].count);
        EXPECT_EQ(many.histograms[0].sum, one.histograms[0].sum);
        EXPECT_EQ(many.histograms[0].buckets, one.histograms[0].buckets);
    }
}

TEST(Metrics, SnapshotIsSortedByName)
{
    Registry reg;
    reg.setEnabled(true);
    reg.counter("zulu").add(1);
    reg.counter("alpha").add(1);
    reg.counter("mike").add(1);
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 3u);
    EXPECT_EQ(snap.counters[0].first, "alpha");
    EXPECT_EQ(snap.counters[1].first, "mike");
    EXPECT_EQ(snap.counters[2].first, "zulu");
}

TEST(Metrics, HistogramQuantilesOnKnownDistribution)
{
    Registry reg;
    reg.setEnabled(true);
    const Histogram h = reg.histogram("h");

    // 90 observations of 1 (bucket 1, upper edge 1) and 10 of 1000
    // (bit_width 10, upper edge 1023): the median sits in the low
    // bucket, the p99 in the high one.
    for (int i = 0; i < 90; ++i)
        h.observe(1);
    for (int i = 0; i < 10; ++i)
        h.observe(1000);

    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const HistSnapshot &hist = snap.histograms[0];
    EXPECT_EQ(hist.count, 100u);
    EXPECT_EQ(hist.sum, 90u + 10u * 1000u);
    EXPECT_EQ(hist.quantile(0.50), 1u);
    EXPECT_EQ(hist.quantile(0.90), 1u);
    EXPECT_EQ(hist.quantile(0.99), 1023u);
    EXPECT_EQ(hist.quantile(0.0), 1u);
    EXPECT_EQ(hist.quantile(1.0), 1023u);
}

TEST(Metrics, HistogramZeroBucket)
{
    Registry reg;
    reg.setEnabled(true);
    const Histogram h = reg.histogram("h");
    h.observe(0);
    const MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].buckets[0], 1u);
    EXPECT_EQ(snap.histograms[0].quantile(0.5), 0u);
}

TEST(Metrics, ResetZeroesEveryShard)
{
    Registry reg;
    reg.setEnabled(true);
    reg.counter("c").add(7);
    reg.histogram("h").observe(9);
    reg.reset();
    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("c"), 0u);
    ASSERT_EQ(snap.histograms.size(), 1u);
    EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST(Metrics, SameNameReturnsSameMetric)
{
    Registry reg;
    reg.setEnabled(true);
    reg.counter("dup").add(3);
    reg.counter("dup").add(4);
    EXPECT_EQ(reg.snapshot().counter("dup"), 7u);
}

TEST(Metrics, JsonRenderingContainsAllSections)
{
    Registry reg;
    reg.setEnabled(true);
    reg.counter("trace.retries").add(2);
    reg.gauge("queue.depth").set(5);
    reg.histogram("lat").observe(100);
    const std::string json = metricsJson(reg.snapshot());
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"trace.retries\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"queue.depth\": 5"), std::string::npos);
}

} // anonymous namespace
} // namespace cac::obs
