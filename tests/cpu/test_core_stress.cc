/**
 * @file
 * Stress and corner-case tests for the out-of-order core: structural
 * resource exhaustion (MSHRs, store buffer, ROB wraparound), and
 * reproducibility.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"
#include "trace/builder.hh"
#include "workloads/spec_proxy.hh"

namespace cac
{
namespace
{

CpuStats
runTrace(const Trace &t, const CpuConfig &cfg = CpuConfig::paperDefault())
{
    OooCore core(cfg);
    return core.run(t);
}

TEST(OooCoreStress, MshrSaturationThrottlesButCompletes)
{
    // Far more independent missing loads than MSHRs: must finish with
    // every instruction committed, at a rate bounded by the bus.
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 4000; ++i)
        b.load(static_cast<std::uint64_t>(i) * 64, reg::r(i % 8),
               reg::none, i % 16);
    CpuStats s = runTrace(t);
    EXPECT_EQ(s.instructions, t.size());
    // Each load misses a distinct line: 4 bus cycles per fill floor.
    EXPECT_GE(s.cycles, 4000u * 4);
}

TEST(OooCoreStress, StoreBufferBackpressure)
{
    // A pure store storm: write-through stores drain at one bus slot
    // per cycle, so the 16-entry buffer must throttle commit without
    // deadlock.
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 4000; ++i)
        b.store(0x8000 + (i % 64) * 8, reg::r(1));
    CpuStats s = runTrace(t);
    EXPECT_EQ(s.instructions, t.size());
    EXPECT_EQ(s.stores, t.size());
    // One bus slot per store, minus the tail still draining in the
    // store buffer when the last instruction commits.
    EXPECT_GE(s.cycles + 16, 4000u);
}

TEST(OooCoreStress, RobWraparoundOverLongTrace)
{
    // Many times the ROB capacity with producer-consumer pairs that
    // cross slot-reuse boundaries.
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 20000; ++i) {
        b.alu(OpClass::IntAlu, reg::r(1), reg::r(2));
        b.alu(OpClass::FpAdd, reg::f(1), reg::f(1));
        b.alu(OpClass::IntAlu, reg::r(2), reg::r(1));
    }
    CpuStats s = runTrace(t);
    EXPECT_EQ(s.instructions, t.size());
}

TEST(OooCoreStress, ConsumerOfLongDeadProducer)
{
    // A value produced once and consumed much later (producer long
    // committed): the consumer must see it as ready immediately.
    Trace t;
    TraceBuilder b(t);
    b.alu(OpClass::IntDiv, reg::r(5), reg::r(1), reg::r(2));
    for (int i = 0; i < 500; ++i)
        b.alu(OpClass::IntAlu, reg::r(6), reg::r(7), reg::none, i % 8);
    b.alu(OpClass::IntAlu, reg::r(8), reg::r(5)); // old producer
    CpuStats s = runTrace(t);
    EXPECT_EQ(s.instructions, t.size());
}

TEST(OooCoreStress, DeterministicAcrossRuns)
{
    Trace t = buildSpecProxy("perl", 40000);
    CpuStats a = runTrace(t, CpuConfig::tableConfig("8k-ipoly-cp-pred"));
    CpuStats b = runTrace(t, CpuConfig::tableConfig("8k-ipoly-cp-pred"));
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.loadMisses, b.loadMisses);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
}

TEST(OooCoreStress, EveryProxyRunsToCompletion)
{
    for (const auto &info : specProxyList()) {
        Trace t = buildSpecProxy(info.name, 15000);
        CpuStats s = runTrace(t);
        EXPECT_EQ(s.instructions, t.size()) << info.name;
        EXPECT_GT(s.ipc(), 0.05) << info.name;
        EXPECT_LE(s.ipc(), 4.0) << info.name;
    }
}

TEST(OooCoreStress, SingleInstructionTrace)
{
    Trace t;
    TraceBuilder b(t);
    b.load(0x1000, reg::r(1));
    CpuStats s = runTrace(t);
    EXPECT_EQ(s.instructions, 1u);
    // Dispatch + EA + cold miss: at least the miss latency.
    EXPECT_GE(s.cycles, 20u);
}

TEST(OooCoreStress, BranchStormStillProgresses)
{
    // Alternating taken/not-taken defeats the 2-bit counters; every
    // branch costs a resolution bubble but the machine keeps moving.
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 3000; ++i)
        b.branch(i & 1, reg::r(1));
    CpuStats s = runTrace(t);
    EXPECT_EQ(s.instructions, t.size());
    EXPECT_GT(s.branchMispredicts, 1000u);
}

} // anonymous namespace
} // namespace cac
