/**
 * @file
 * Tests for the Table-1 functional-unit pool.
 */

#include <gtest/gtest.h>

#include "cpu/func_units.hh"

namespace cac
{
namespace
{

TEST(FuncUnits, Table1Latencies)
{
    EXPECT_EQ(opLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(opLatency(OpClass::IntMul), 9u);
    EXPECT_EQ(opLatency(OpClass::IntDiv), 67u);
    EXPECT_EQ(opLatency(OpClass::FpAdd), 4u);
    EXPECT_EQ(opLatency(OpClass::FpMul), 4u);
    EXPECT_EQ(opLatency(OpClass::FpDiv), 16u);
    EXPECT_EQ(opLatency(OpClass::FpSqrt), 35u);
    EXPECT_EQ(opLatency(OpClass::Load), 1u);  // EA stage only
    EXPECT_EQ(opLatency(OpClass::Store), 1u);
}

TEST(FuncUnits, Table1RepeatRates)
{
    EXPECT_EQ(opRepeatRate(OpClass::IntAlu), 1u);
    EXPECT_EQ(opRepeatRate(OpClass::IntMul), 1u); // pipelined
    EXPECT_EQ(opRepeatRate(OpClass::IntDiv), 67u);
    EXPECT_EQ(opRepeatRate(OpClass::FpDiv), 16u);
    EXPECT_EQ(opRepeatRate(OpClass::FpSqrt), 35u);
}

TEST(FuncUnits, ClassAssignment)
{
    EXPECT_EQ(fuClassFor(OpClass::Branch), FuClass::SimpleInt);
    EXPECT_EQ(fuClassFor(OpClass::IntMul), FuClass::ComplexInt);
    EXPECT_EQ(fuClassFor(OpClass::IntDiv), FuClass::ComplexInt);
    EXPECT_EQ(fuClassFor(OpClass::Load), FuClass::EffAddr);
    EXPECT_EQ(fuClassFor(OpClass::Store), FuClass::EffAddr);
    EXPECT_EQ(fuClassFor(OpClass::FpDiv), FuClass::FpDivSqrt);
    EXPECT_EQ(fuClassFor(OpClass::FpSqrt), FuClass::FpDivSqrt);
}

TEST(FuncUnits, SingleSimpleIntUnitPerCycle)
{
    FuncUnitPool pool;
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 0));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntAlu, 0)); // one unit
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 1));  // repeat rate 1
}

TEST(FuncUnits, TwoEffectiveAddressUnits)
{
    FuncUnitPool pool;
    EXPECT_TRUE(pool.tryIssue(OpClass::Load, 0));
    EXPECT_TRUE(pool.tryIssue(OpClass::Store, 0));
    EXPECT_FALSE(pool.tryIssue(OpClass::Load, 0)); // both busy
    EXPECT_TRUE(pool.tryIssue(OpClass::Load, 1));
}

TEST(FuncUnits, DividerBlocksForRepeatInterval)
{
    FuncUnitPool pool;
    EXPECT_TRUE(pool.tryIssue(OpClass::IntDiv, 0));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntDiv, 1));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntDiv, 66));
    EXPECT_TRUE(pool.tryIssue(OpClass::IntDiv, 67));
}

TEST(FuncUnits, DividerAlsoBlocksMultiplier)
{
    // Multiply and divide share the single complex-integer unit.
    FuncUnitPool pool;
    EXPECT_TRUE(pool.tryIssue(OpClass::IntDiv, 0));
    EXPECT_FALSE(pool.tryIssue(OpClass::IntMul, 10));
    EXPECT_TRUE(pool.tryIssue(OpClass::IntMul, 67));
}

TEST(FuncUnits, PipelinedMultiplierSustainsOnePerCycle)
{
    FuncUnitPool pool;
    for (std::uint64_t c = 0; c < 20; ++c)
        EXPECT_TRUE(pool.tryIssue(OpClass::IntMul, c)) << c;
}

TEST(FuncUnits, FpDivAndSqrtShareTheUnit)
{
    FuncUnitPool pool;
    EXPECT_TRUE(pool.tryIssue(OpClass::FpSqrt, 0));
    EXPECT_FALSE(pool.tryIssue(OpClass::FpDiv, 20));
    EXPECT_TRUE(pool.tryIssue(OpClass::FpDiv, 35));
}

TEST(FuncUnits, IndependentClassesDoNotInterfere)
{
    FuncUnitPool pool;
    EXPECT_TRUE(pool.tryIssue(OpClass::IntAlu, 0));
    EXPECT_TRUE(pool.tryIssue(OpClass::IntMul, 0));
    EXPECT_TRUE(pool.tryIssue(OpClass::FpAdd, 0));
    EXPECT_TRUE(pool.tryIssue(OpClass::FpMul, 0));
    EXPECT_TRUE(pool.tryIssue(OpClass::FpDiv, 0));
    EXPECT_TRUE(pool.tryIssue(OpClass::Load, 0));
}

} // anonymous namespace
} // namespace cac
