/**
 * @file
 * Tests for the CPU configuration presets (the Table 2 columns and the
 * Table 1 parameters they encode).
 */

#include <gtest/gtest.h>

#include "cpu/config.hh"

namespace cac
{
namespace
{

TEST(CpuConfig, PaperDefaultMatchesSection4)
{
    CpuConfig cfg = CpuConfig::paperDefault();
    EXPECT_EQ(cfg.fetchWidth, 4u);   // four-way superscalar
    EXPECT_EQ(cfg.robEntries, 32u);  // reorder buffer
    EXPECT_EQ(cfg.intPhysRegs, 64u); // two 64-entry register files
    EXPECT_EQ(cfg.fpPhysRegs, 64u);
    EXPECT_EQ(cfg.bhtEntries, 2048u); // 2K-entry BHT
    EXPECT_EQ(cfg.cacheBytes, 8u * 1024);
    EXPECT_EQ(cfg.blockBytes, 32u);
    EXPECT_EQ(cfg.cacheWays, 2u);
    EXPECT_EQ(cfg.hitCycles, 2u);
    EXPECT_EQ(cfg.missPenaltyCycles, 20u);
    EXPECT_EQ(cfg.mshrs, 8u);     // 8 outstanding misses
    EXPECT_EQ(cfg.memPorts, 2u);  // two memory ports
    EXPECT_EQ(cfg.busCyclesPerLine, 4u); // 32B line on a 64-bit bus
    EXPECT_EQ(cfg.addrPredEntries, 1024u); // 1K-entry predictor
    EXPECT_EQ(cfg.indexKind, IndexKind::Modulo);
    EXPECT_FALSE(cfg.xorInCriticalPath);
    EXPECT_FALSE(cfg.addressPrediction);
}

TEST(CpuConfig, HashBitsExcludeBlockOffset)
{
    CpuConfig cfg = CpuConfig::paperDefault();
    EXPECT_EQ(cfg.hashAddressBits, 19u); // 19 LSBs per section 3.4
    EXPECT_EQ(cfg.hashBlockBits(), 14u); // minus 5 offset bits
}

TEST(CpuConfig, TableConfigColumns)
{
    EXPECT_EQ(CpuConfig::tableConfig("16k-conv").cacheBytes, 16u * 1024);
    EXPECT_EQ(CpuConfig::tableConfig("8k-conv").cacheBytes, 8u * 1024);
    EXPECT_TRUE(CpuConfig::tableConfig("8k-conv-pred").addressPrediction);

    CpuConfig nocp = CpuConfig::tableConfig("8k-ipoly-nocp");
    EXPECT_EQ(nocp.indexKind, IndexKind::IPolySkew);
    EXPECT_FALSE(nocp.xorInCriticalPath);

    CpuConfig cp = CpuConfig::tableConfig("8k-ipoly-cp");
    EXPECT_TRUE(cp.xorInCriticalPath);
    EXPECT_FALSE(cp.addressPrediction);

    CpuConfig cpp = CpuConfig::tableConfig("8k-ipoly-cp-pred");
    EXPECT_TRUE(cpp.xorInCriticalPath);
    EXPECT_TRUE(cpp.addressPrediction);
}

TEST(CpuConfig, L1GeometryDerived)
{
    CacheGeometry geom = CpuConfig::tableConfig("16k-conv").l1Geometry();
    EXPECT_EQ(geom.numSets(), 256u);
    EXPECT_EQ(geom.setBits(), 8u);
}

TEST(CpuConfig, ToStringMentionsOptions)
{
    CpuConfig cfg = CpuConfig::tableConfig("8k-ipoly-cp-pred");
    const std::string s = cfg.toString();
    EXPECT_NE(s.find("Hp-Sk"), std::string::npos);
    EXPECT_NE(s.find("xor-in-cp"), std::string::npos);
    EXPECT_NE(s.find("addr-pred"), std::string::npos);
}

TEST(CpuConfigDeath, UnknownColumnIsFatal)
{
    EXPECT_EXIT((void)CpuConfig::tableConfig("32k-magic"),
                ::testing::ExitedWithCode(1), "unknown");
}

} // anonymous namespace
} // namespace cac
