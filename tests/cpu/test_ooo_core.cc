/**
 * @file
 * Tests for the out-of-order core: dataflow limits, structural
 * hazards, branch handling, memory behaviour and the paper's three
 * design alternatives.
 */

#include <gtest/gtest.h>

#include "cpu/ooo_core.hh"
#include "trace/builder.hh"
#include "workloads/spec_proxy.hh"

namespace cac
{
namespace
{

CpuStats
runTrace(const Trace &t, const CpuConfig &cfg = CpuConfig::paperDefault())
{
    OooCore core(cfg);
    return core.run(t);
}

TEST(OooCore, EmptyTraceFinishes)
{
    CpuStats s = runTrace({});
    EXPECT_EQ(s.instructions, 0u);
}

TEST(OooCore, IndependentAluIpcApproachesWidth)
{
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 4000; ++i)
        b.alu(OpClass::IntAlu, reg::r(i % 8), reg::none, reg::none,
              i % 16);
    CpuStats s = runTrace(t);
    // Independent 1-cycle ops: bounded by the single simple-int unit,
    // so IPC ~1 (the unit is the bottleneck, not the width).
    EXPECT_GT(s.ipc(), 0.9);
    EXPECT_LE(s.ipc(), 1.1);
}

TEST(OooCore, MixedUnitsExceedOneIpc)
{
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 3000; ++i) {
        b.alu(OpClass::IntAlu, reg::r(1));
        b.alu(OpClass::FpAdd, reg::f(1));
        b.alu(OpClass::FpMul, reg::f(2));
        b.load(0x1000 + (i % 8) * 8, reg::r(2));
    }
    CpuStats s = runTrace(t);
    EXPECT_GT(s.ipc(), 2.5); // four independent pipes
}

TEST(OooCore, DependencyChainSerializes)
{
    // acc = acc op acc: FP adds at latency 4 in a strict chain.
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 2000; ++i)
        b.alu(OpClass::FpAdd, reg::f(0), reg::f(0), reg::f(0));
    CpuStats s = runTrace(t);
    EXPECT_NEAR(s.ipc(), 0.25, 0.05); // one per 4 cycles
}

TEST(OooCore, DivideLatencySerializesChain)
{
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 200; ++i)
        b.alu(OpClass::IntDiv, reg::r(0), reg::r(0), reg::r(0));
    CpuStats s = runTrace(t);
    EXPECT_LT(s.ipc(), 0.02); // ~1 per 67 cycles
}

TEST(OooCore, LoadUseLatencyThreeCyclesOnHit)
{
    // load -> dependent alu chains: hit path is EA(1) + cache(2).
    Trace t;
    TraceBuilder b(t);
    b.load(0x1000, reg::r(1));
    for (int i = 0; i < 2000; ++i) {
        b.load(0x1000, reg::r(1), reg::r(1)); // address depends on load
    }
    CpuStats s = runTrace(t);
    EXPECT_NEAR(s.ipc(), 1.0 / 3.0, 0.05);
}

TEST(OooCore, CacheMissesCrushDependentIpc)
{
    // Serial pointer chase over 4KB-congruent lines: conventional
    // placement thrashes; every load pays the 20-cycle penalty.
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 1500; ++i)
        b.load((i % 8) * 0x1000, reg::r(1), reg::r(1));
    CpuStats s = runTrace(t);
    EXPECT_LT(s.ipc(), 0.06);
    EXPECT_GT(s.loadMissRatioPct(), 95.0);
}

TEST(OooCore, BranchMispredictsCostFetchBubbles)
{
    Trace well_predicted, random_branches;
    {
        TraceBuilder b(well_predicted);
        for (int i = 0; i < 3000; ++i) {
            b.alu(OpClass::IntAlu, reg::r(1));
            b.branch(true, reg::r(1));
        }
    }
    {
        TraceBuilder b(random_branches);
        for (int i = 0; i < 3000; ++i) {
            b.alu(OpClass::IntAlu, reg::r(1));
            b.branch((i * 2654435761u >> 13) & 1, reg::r(1));
        }
    }
    CpuStats good = runTrace(well_predicted);
    CpuStats bad = runTrace(random_branches);
    EXPECT_LT(good.branchMispredicts * 50, good.branches);
    EXPECT_GT(bad.branchMispredicts * 4, bad.branches);
    EXPECT_GT(good.ipc(), bad.ipc() * 1.3);
}

TEST(OooCore, StoreForwardingBeatsCacheRoundTrip)
{
    // store X then immediately load X: forwarding supplies the data
    // without a cache access, so the load never misses.
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 1000; ++i) {
        b.store(0x8000, reg::r(1));
        b.load(0x8000, reg::r(2));
        b.alu(OpClass::IntAlu, reg::r(3), reg::r(2));
    }
    CpuStats s = runTrace(t);
    EXPECT_EQ(s.loadMisses, 0u); // all forwarded, no cache misses
}

TEST(OooCore, CommitIsBoundedByWidth)
{
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 1000; ++i) {
        b.alu(OpClass::IntAlu, reg::r(1), reg::none, reg::none, 0);
        b.alu(OpClass::FpAdd, reg::f(1), reg::none, reg::none, 1);
        b.alu(OpClass::FpMul, reg::f(2), reg::none, reg::none, 2);
        b.alu(OpClass::FpAdd, reg::f(3), reg::none, reg::none, 3);
        b.alu(OpClass::FpMul, reg::f(4), reg::none, reg::none, 4);
    }
    CpuStats s = runTrace(t);
    // IPC can never exceed the commit width.
    EXPECT_LE(s.ipc(), 4.0);
    EXPECT_EQ(s.instructions, t.size());
}

TEST(OooCore, AllInstructionsCommitExactlyOnce)
{
    Trace t = buildSpecProxy("gcc", 30000);
    CpuStats s = runTrace(t);
    EXPECT_EQ(s.instructions, t.size());
}

TEST(OooCore, XorInCriticalPathCostsIpc)
{
    Trace t = buildSpecProxy("li", 60000);
    CpuConfig nocp = CpuConfig::tableConfig("8k-ipoly-nocp");
    CpuConfig cp = CpuConfig::tableConfig("8k-ipoly-cp");
    const double ipc_nocp = runTrace(t, nocp).ipc();
    const double ipc_cp = runTrace(t, cp).ipc();
    EXPECT_LT(ipc_cp, ipc_nocp);
    // The paper reports ~1.7% average loss for low-conflict codes;
    // anything under ~10% is the right order.
    EXPECT_GT(ipc_cp, ipc_nocp * 0.90);
}

TEST(OooCore, AddressPredictionRecoversXorPenalty)
{
    // On a stride-predictable workload, prediction must recover the
    // critical-path penalty (Table 2's headline mechanism).
    Trace t = buildSpecProxy("su2cor", 60000);
    const double cp = runTrace(
        t, CpuConfig::tableConfig("8k-ipoly-cp")).ipc();
    const double cp_pred = runTrace(
        t, CpuConfig::tableConfig("8k-ipoly-cp-pred")).ipc();
    const double nocp = runTrace(
        t, CpuConfig::tableConfig("8k-ipoly-nocp")).ipc();
    EXPECT_GT(cp_pred, cp);
    EXPECT_GE(cp_pred, nocp * 0.97);
}

TEST(OooCore, IPolyLiftsBadProgramIpc)
{
    // The paper's bottom line (Table 3): conflict-heavy programs gain
    // >25% IPC from I-Poly indexing even with the XOR in the critical
    // path, beating a double-size conventional cache.
    Trace t = buildSpecProxy("swim", 80000);
    const double conv8 = runTrace(
        t, CpuConfig::tableConfig("8k-conv")).ipc();
    const double conv16 = runTrace(
        t, CpuConfig::tableConfig("16k-conv")).ipc();
    const double ipoly_cp = runTrace(
        t, CpuConfig::tableConfig("8k-ipoly-cp")).ipc();
    EXPECT_GT(ipoly_cp, conv8 * 1.25);
    EXPECT_GT(ipoly_cp, conv16);
}

TEST(OooCore, AddrPredictorStatsExposed)
{
    Trace t = buildSpecProxy("su2cor", 40000);
    OooCore core(CpuConfig::tableConfig("8k-ipoly-cp-pred"));
    CpuStats s = core.run(t);
    EXPECT_GT(s.addrPredConfidentCorrect, 0u);
    EXPECT_GT(core.addrPredictor().lookups(), 0u);
    // Confident predictions should be mostly correct on strided code.
    EXPECT_GT(core.addrPredictor().accuracy(), 0.7);
    (void)s;
}

TEST(OooCore, CyclesMonotoneInTraceLength)
{
    Trace t1 = buildSpecProxy("mgrid", 10000);
    Trace t2 = buildSpecProxy("mgrid", 40000);
    CpuStats s1 = runTrace(t1);
    CpuStats s2 = runTrace(t2);
    EXPECT_GT(s2.cycles, s1.cycles);
}

} // anonymous namespace
} // namespace cac
