/**
 * @file
 * Tests for the bimodal branch predictor.
 */

#include <gtest/gtest.h>

#include "cpu/branch_predictor.hh"

namespace cac
{
namespace
{

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    BranchPredictor bp(2048);
    for (int i = 0; i < 4; ++i)
        bp.update(0x100, true);
    EXPECT_TRUE(bp.predict(0x100));
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    BranchPredictor bp(2048);
    for (int i = 0; i < 4; ++i)
        bp.update(0x100, false);
    EXPECT_FALSE(bp.predict(0x100));
}

TEST(BranchPredictor, HysteresisSurvivesOneAnomaly)
{
    BranchPredictor bp(2048);
    for (int i = 0; i < 4; ++i)
        bp.update(0x100, true); // saturate at 3
    bp.update(0x100, false);    // one not-taken drops to 2
    EXPECT_TRUE(bp.predict(0x100));
    bp.update(0x100, false);    // second one flips
    EXPECT_FALSE(bp.predict(0x100));
}

TEST(BranchPredictor, CountersSaturate)
{
    BranchPredictor bp(64);
    for (int i = 0; i < 100; ++i)
        bp.update(0x40, true);
    // Still takes exactly two not-takens to flip.
    bp.update(0x40, false);
    EXPECT_TRUE(bp.predict(0x40));
    bp.update(0x40, false);
    EXPECT_FALSE(bp.predict(0x40));
}

TEST(BranchPredictor, DistinctPcsAreIndependent)
{
    BranchPredictor bp(2048);
    for (int i = 0; i < 4; ++i) {
        bp.update(0x100, true);
        bp.update(0x104, false);
    }
    EXPECT_TRUE(bp.predict(0x100));
    EXPECT_FALSE(bp.predict(0x104));
}

TEST(BranchPredictor, AliasingWrapsAtTableSize)
{
    BranchPredictor bp(64); // entries indexed by (pc>>2) & 63
    for (int i = 0; i < 4; ++i)
        bp.update(0x0, true);
    // pc 0x100 maps to (0x100>>2)&63 = 0; same entry.
    EXPECT_TRUE(bp.predict(0x100));
}

TEST(BranchPredictor, AccuracyAccounting)
{
    BranchPredictor bp(2048);
    bp.recordOutcome(true);
    bp.recordOutcome(true);
    bp.recordOutcome(false);
    EXPECT_EQ(bp.predictions(), 3u);
    EXPECT_EQ(bp.mispredictions(), 1u);
    EXPECT_NEAR(bp.accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(BranchPredictor, LoopPatternAccuracy)
{
    // A 100-iteration loop branch: bimodal mispredicts only the exit.
    BranchPredictor bp(2048);
    int mispredicts = 0;
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 100; ++i) {
            const bool taken = i != 99;
            mispredicts += bp.predict(0x200) != taken;
            bp.update(0x200, taken);
        }
    }
    EXPECT_LE(mispredicts, 25); // ~2 per round after warmup
}

} // anonymous namespace
} // namespace cac
