/**
 * @file
 * Tests for the memory address predictor (section 4 semantics: last
 * address + stride + 2-bit confidence, untagged direct-mapped table).
 */

#include <gtest/gtest.h>

#include "cpu/addr_predictor.hh"

namespace cac
{
namespace
{

TEST(AddrPredictor, LearnsConstantStride)
{
    AddrPredictor ap(1024);
    const std::uint32_t pc = 0x40;
    std::uint64_t addr = 0x10000;
    // Train on a stride-64 stream.
    for (int i = 0; i < 6; ++i) {
        ap.update(pc, addr);
        addr += 64;
    }
    auto p = ap.predict(pc);
    EXPECT_TRUE(p.confident);
    EXPECT_EQ(p.addr, addr);
}

TEST(AddrPredictor, NotConfidentWhileCold)
{
    AddrPredictor ap(1024);
    EXPECT_FALSE(ap.predict(0x40).confident);
    ap.update(0x40, 0x1000);
    EXPECT_FALSE(ap.predict(0x40).confident);
}

TEST(AddrPredictor, ConfidenceRequiresTwoCorrectPredictions)
{
    AddrPredictor ap(1024);
    const std::uint32_t pc = 0x80;
    ap.update(pc, 0x1000); // stride unknown (0), addr recorded
    ap.update(pc, 0x1008); // predicted 0x1000, wrong; stride := 8
    ap.update(pc, 0x1010); // predicted 0x1010, correct; ctr 1
    EXPECT_FALSE(ap.predict(pc).confident);
    ap.update(pc, 0x1018); // correct; ctr 2 -> MSB set
    EXPECT_TRUE(ap.predict(pc).confident);
}

TEST(AddrPredictor, StrideFrozenWhileConfident)
{
    // Paper: "the stride field is only updated when the counter goes
    // below 10b". One deviating address must not retrain the stride.
    AddrPredictor ap(1024);
    const std::uint32_t pc = 0xC0;
    std::uint64_t addr = 0x2000;
    for (int i = 0; i < 8; ++i) {
        ap.update(pc, addr);
        addr += 8;
    }
    EXPECT_TRUE(ap.predict(pc).confident);
    // One irregular access (e.g. a boundary): counter drops to 2-1=...,
    // stride stays 8 because the counter is still >= 10b after one
    // decrement from 3.
    ap.update(pc, 0x9000);
    auto p = ap.predict(pc);
    EXPECT_EQ(p.addr, 0x9000u + 8); // last addr updated, stride kept
}

TEST(AddrPredictor, RetrainsAfterRepeatedMisses)
{
    AddrPredictor ap(1024);
    const std::uint32_t pc = 0x100;
    std::uint64_t addr = 0x3000;
    for (int i = 0; i < 8; ++i) {
        ap.update(pc, addr);
        addr += 8;
    }
    // Switch to stride 256: after enough misses confidence drops below
    // 10b and the new stride is learned, then confidence recovers.
    addr = 0x100000;
    for (int i = 0; i < 8; ++i) {
        ap.update(pc, addr);
        addr += 256;
    }
    auto p = ap.predict(pc);
    EXPECT_TRUE(p.confident);
    EXPECT_EQ(p.addr, addr);
}

TEST(AddrPredictor, UntaggedTableAliases)
{
    AddrPredictor ap(64); // index = (pc>>2) & 63
    std::uint64_t addr = 0x4000;
    for (int i = 0; i < 6; ++i) {
        ap.update(0x0, addr);
        addr += 8;
    }
    // A colliding pc sees the same entry (no tags, by design).
    auto p = ap.predict(64 * 4);
    EXPECT_TRUE(p.confident);
}

TEST(AddrPredictor, CoverageAndAccuracyStats)
{
    AddrPredictor ap(1024);
    std::uint64_t addr = 0x5000;
    for (int i = 0; i < 100; ++i) {
        ap.update(0x40, addr);
        addr += 16;
    }
    // After warmup nearly every reference was confidently predicted.
    EXPECT_GT(ap.coverage(), 0.9);
    EXPECT_GT(ap.accuracy(), 0.95);
    EXPECT_EQ(ap.lookups(), 100u);
}

TEST(AddrPredictor, RandomStreamGetsLowCoverage)
{
    AddrPredictor ap(1024);
    std::uint64_t x = 12345;
    for (int i = 0; i < 500; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        ap.update(0x40, x);
    }
    EXPECT_LT(ap.coverage(), 0.05);
}

TEST(AddrPredictor, PaperCoverageBallpark)
{
    // Reference [9]: ~75% of loads predictable with this scheme. A mix
    // of strided PCs (predictable) and one random PC should land in
    // that region by construction.
    AddrPredictor ap(1024);
    std::uint64_t a0 = 0, a1 = 1 << 20, x = 999;
    for (int i = 0; i < 3000; ++i) {
        ap.update(0x40, a0 += 8);   // predictable
        ap.update(0x44, a1 += 32);  // predictable
        if (i % 2 == 0) {
            x = x * 6364136223846793005ull + 1;
            ap.update(0x48, x);     // unpredictable, half the rate
        }
    }
    EXPECT_GT(ap.coverage(), 0.6);
    EXPECT_LT(ap.coverage(), 0.9);
}

} // anonymous namespace
} // namespace cac
