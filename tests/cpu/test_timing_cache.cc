/**
 * @file
 * Tests for the timed, lockup-free L1 data cache.
 */

#include <gtest/gtest.h>

#include "cpu/timing_cache.hh"

namespace cac
{
namespace
{

CpuConfig
baseConfig()
{
    return CpuConfig::paperDefault();
}

TEST(TimingCache, HitLatencyIsTwoCycles)
{
    TimingCache c(baseConfig());
    (void)c.load(0x1000, 0); // cold miss fills
    auto t = c.load(0x1000, 100);
    EXPECT_TRUE(t.accepted);
    EXPECT_FALSE(t.miss);
    EXPECT_EQ(t.readyTick, 102u);
}

TEST(TimingCache, MissPaysHitPlusPenalty)
{
    TimingCache c(baseConfig());
    auto t = c.load(0x1000, 10);
    EXPECT_TRUE(t.miss);
    EXPECT_EQ(t.readyTick, 10u + 2 + 20);
}

TEST(TimingCache, SecondaryMissMergesWithInFlightLine)
{
    TimingCache c(baseConfig());
    auto t1 = c.load(0x1000, 0);   // primary miss, ready at 22
    auto t2 = c.load(0x1008, 1);   // same line: merge
    EXPECT_TRUE(t1.miss);
    EXPECT_FALSE(t2.miss); // line miss counted once (Tables 2-3 metric)
    EXPECT_EQ(t2.readyTick, t1.readyTick);
}

TEST(TimingCache, EightOutstandingMissesMax)
{
    TimingCache c(baseConfig());
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_TRUE(c.load(i * 0x1000, 0).accepted);
    EXPECT_FALSE(c.wouldAccept(0x9000, 0));
    auto t = c.load(0x9000, 0);
    EXPECT_FALSE(t.accepted);
}

TEST(TimingCache, MshrsFreeAfterFillCompletes)
{
    TimingCache c(baseConfig());
    for (std::uint64_t i = 0; i < 8; ++i)
        (void)c.load(i * 0x1000, 0);
    // All fills complete by tick 22 + bus queueing; far later all slots
    // are free again.
    EXPECT_TRUE(c.wouldAccept(0x9000, 100));
    auto t = c.load(0x9000, 100);
    EXPECT_TRUE(t.accepted);
    EXPECT_TRUE(t.miss);
}

TEST(TimingCache, BusSerializesLineFills)
{
    // Two simultaneous misses: the second line transfer queues behind
    // the first on the 64-bit bus (4 cycles per 32B line).
    TimingCache c(baseConfig());
    auto t1 = c.load(0x1000, 0);
    auto t2 = c.load(0x2000, 0);
    EXPECT_EQ(t1.readyTick, 22u);
    EXPECT_GE(t2.readyTick, t1.readyTick); // queued behind
}

TEST(TimingCache, BusSaturationDelaysManyMisses)
{
    TimingCache c(baseConfig());
    std::uint64_t last = 0;
    for (std::uint64_t i = 0; i < 8; ++i)
        last = c.load(i * 0x1000, 0).readyTick;
    // 8 transfers x 4 cycles each cannot finish before 32.
    EXPECT_GE(last, 32u);
}

TEST(TimingCache, WriteThroughNoAllocate)
{
    TimingCache c(baseConfig());
    c.storeCommit(0x3000, 0);
    EXPECT_FALSE(c.array().probe(0x3000)); // no allocation
    // A store to a resident line updates it and stays resident.
    (void)c.load(0x4000, 0);
    c.storeCommit(0x4000, 50);
    EXPECT_TRUE(c.array().probe(0x4000));
}

TEST(TimingCache, StoresOccupyTheBus)
{
    TimingCache c(baseConfig());
    const std::uint64_t done1 = c.storeCommit(0x3000, 10);
    const std::uint64_t done2 = c.storeCommit(0x3008, 10);
    EXPECT_EQ(done1, 11u);
    EXPECT_EQ(done2, 12u); // serialized behind the first
}

TEST(TimingCache, LoadMissRatioTracksFunctionalArray)
{
    TimingCache c(baseConfig());
    (void)c.load(0x1000, 0);
    (void)c.load(0x1000, 100);
    (void)c.load(0x2000, 200);
    EXPECT_EQ(c.stats().loads, 3u);
    EXPECT_EQ(c.stats().loadMisses, 2u);
    EXPECT_NEAR(c.loadMissRatioPct(), 66.7, 0.1);
}

TEST(TimingCache, IPolyConfigUsesPolynomialPlacement)
{
    CpuConfig cfg = CpuConfig::tableConfig("8k-ipoly-nocp");
    TimingCache c(cfg);
    // Three 4KB-congruent lines coexist under skewed I-Poly.
    for (int round = 0; round < 10; ++round)
        for (std::uint64_t a : {0x0000ull, 0x1000ull, 0x2000ull})
            (void)c.load(a, round * 1000);
    EXPECT_LE(c.stats().loadMisses, 6u);
}

TEST(TimingCache, XorPenaltyIsCallersResponsibility)
{
    // The +1 XOR cycle is applied by the core via start_tick; the
    // timing cache itself charges identical latency.
    TimingCache c(baseConfig());
    (void)c.load(0x1000, 0);
    EXPECT_EQ(c.load(0x1000, 50).readyTick, 52u);
    EXPECT_EQ(c.load(0x1000, 51).readyTick, 53u);
}

} // anonymous namespace
} // namespace cac
