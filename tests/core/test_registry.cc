/**
 * @file
 * Tests for the organization registry: every advertised label builds,
 * families resolve arbitrary associativity, and custom registrations
 * slot in beside the built-ins.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "cache/fully_assoc.hh"
#include "core/registry.hh"

namespace cac
{
namespace
{

TEST(OrgRegistry, EveryAdvertisedLabelBuilds)
{
    // The usage string (cac_sim) is generated from entries(); each
    // entry's example label must round-trip through build().
    OrgSpec spec;
    auto &registry = OrgRegistry::global();
    for (const auto &label : registry.exampleLabels()) {
        ASSERT_TRUE(registry.known(label)) << label;
        auto cache = registry.build(label, spec);
        ASSERT_NE(cache, nullptr) << label;
        EXPECT_FALSE(cache->name().empty()) << label;
        EXPECT_FALSE(cache->access(0x1234, false).hit) << label;
        EXPECT_TRUE(cache->access(0x1234, false).hit) << label;
    }
}

TEST(OrgRegistry, StandardComparisonLabelsAreAllRegistered)
{
    auto &registry = OrgRegistry::global();
    for (const auto &label : standardComparisonLabels())
        EXPECT_TRUE(registry.known(label)) << label;
}

TEST(OrgRegistry, ExampleNamesReflectTheScheme)
{
    OrgSpec spec;
    auto &registry = OrgRegistry::global();
    for (const auto &label :
         {"a2-Hx", "a2-Hx-Sk", "a2-Hp", "a2-Hp-Sk"}) {
        auto cache = registry.build(label, spec);
        const std::string suffix = std::string(label).substr(3);
        EXPECT_NE(cache->name().find(suffix), std::string::npos)
            << label << " -> " << cache->name();
    }
}

TEST(OrgRegistry, FamiliesResolveArbitraryAssociativity)
{
    OrgSpec spec;
    auto &registry = OrgRegistry::global();
    // Skewed I-Poly needs one distinct polynomial per way; the catalog
    // covers the paper's range (up to 4 ways).
    for (unsigned ways : {1u, 2u, 4u}) {
        const std::string label = "a" + std::to_string(ways) + "-Hp-Sk";
        ASSERT_TRUE(registry.known(label)) << label;
        auto cache = registry.build(label, spec);
        EXPECT_EQ(cache->geometry().ways(), ways) << label;
    }
    // Conventional indexing scales to any power-of-two associativity.
    auto wide = registry.build("a8", spec);
    EXPECT_EQ(wide->geometry().ways(), 8u);
}

TEST(OrgRegistry, MalformedFamilyLabelsAreUnknown)
{
    auto &registry = OrgRegistry::global();
    for (const auto &label :
         {"a", "a-Hp", "a2-", "a2-bogus", "a2Hp", "aN-Hp", "wombat"}) {
        EXPECT_FALSE(registry.known(label)) << label;
    }
}

TEST(OrgRegistry, PatternsListedInRegistrationOrder)
{
    const auto patterns = OrgRegistry::global().patterns();
    ASSERT_GE(patterns.size(), 10u);
    EXPECT_EQ(patterns.front(), "dm");
    // Families are advertised with the aN placeholder.
    EXPECT_NE(std::find(patterns.begin(), patterns.end(), "aN-Hp-Sk"),
              patterns.end());
    EXPECT_NE(std::find(patterns.begin(), patterns.end(), "column-poly"),
              patterns.end());
}

TEST(OrgRegistry, CustomRegistrationExtendsTheSet)
{
    auto &registry = OrgRegistry::global();
    ASSERT_FALSE(registry.known("test-custom"));
    registry.add("test-custom", "test-only organization",
                 [](const std::string &, const OrgSpec &spec) {
                     return std::make_unique<FullyAssocCache>(
                         spec.sizeBytes, spec.blockBytes, true);
                 });
    ASSERT_TRUE(registry.known("test-custom"));
    OrgSpec spec;
    auto cache = registry.build("test-custom", spec);
    EXPECT_NE(cache->name().find("fully-assoc"), std::string::npos);
}

TEST(OrgRegistryDeath, UnknownLabelIsFatal)
{
    OrgSpec spec;
    EXPECT_EXIT((void)OrgRegistry::global().build("wombat", spec),
                ::testing::ExitedWithCode(1), "unknown");
}

} // anonymous namespace
} // namespace cac
