/**
 * @file
 * Tests for the SimTarget abstraction: the extended target label
 * grammar ("2lvl:", "cpu:"), and agreement of each target class with
 * the serial driver it subsumes (runTraceMemory, a hand-rolled
 * TwoLevelHierarchy loop, OooCore::run).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cache/set_assoc.hh"
#include "core/experiment.hh"
#include "core/registry.hh"
#include "core/sim_target.hh"
#include "cpu/ooo_core.hh"
#include "hierarchy/two_level.hh"
#include "index/factory.hh"
#include "workloads/spec_proxy.hh"

namespace cac
{
namespace
{

Trace
proxyTrace()
{
    return buildSpecProxy("swim", 15000);
}

TEST(TargetGrammar, KnownTargetAcceptsAllThreeForms)
{
    const OrgRegistry &reg = OrgRegistry::global();
    EXPECT_TRUE(reg.knownTarget("a2-Hp-Sk"));
    EXPECT_TRUE(reg.knownTarget("2lvl:a2-Hp-Sk/a4"));
    EXPECT_TRUE(reg.knownTarget("2lvl:dm/full"));
    EXPECT_TRUE(reg.knownTarget("cpu:8k-ipoly-cp-pred"));
    EXPECT_TRUE(reg.knownTarget("cpu:a2-Hp-Sk"));
    EXPECT_TRUE(reg.knownTarget("cpu:a4"));

    EXPECT_FALSE(reg.knownTarget("wombat"));
    EXPECT_FALSE(reg.knownTarget("2lvl:a2"));        // no '/'
    EXPECT_FALSE(reg.knownTarget("2lvl:a2/wombat")); // bad L2
    EXPECT_FALSE(reg.knownTarget("cpu:wombat"));
    EXPECT_FALSE(reg.knownTarget("cpu:"));
}

TEST(TargetGrammar, BuildTargetProducesTheRightKinds)
{
    const TargetSpec spec;
    const OrgRegistry &reg = OrgRegistry::global();
    EXPECT_EQ(reg.buildTarget("a2", spec)->kind(), TargetKind::Cache);
    EXPECT_EQ(reg.buildTarget("2lvl:a2/a4", spec)->kind(),
              TargetKind::Hierarchy);
    EXPECT_EQ(reg.buildTarget("cpu:8k-conv", spec)->kind(),
              TargetKind::Cpu);
}

TEST(TargetGrammar, StandardTargetLabelsAllResolve)
{
    for (const std::string &label : standardTargetLabels())
        EXPECT_TRUE(OrgRegistry::global().knownTarget(label)) << label;
}

TEST(TargetGrammarDeath, MalformedTwoLevelIsFatal)
{
    const TargetSpec spec;
    EXPECT_EXIT((void)OrgRegistry::global().buildTarget("2lvl:a2", spec),
                ::testing::ExitedWithCode(1), "2lvl");
}

TEST(CacheTargetTest, ReplayMatchesRunTraceMemory)
{
    const Trace trace = proxyTrace();
    const OrgSpec spec;

    auto serial = makeOrganization("a2-Hp-Sk", spec);
    const CacheStats want = runTraceMemory(*serial, trace);

    CacheTarget target(makeOrganization("a2-Hp-Sk", spec));
    target.replay(trace.data(), trace.size());
    target.finish();
    const TargetStats got = target.stats();

    EXPECT_EQ(got.l1.loads, want.loads);
    EXPECT_EQ(got.l1.stores, want.stores);
    EXPECT_EQ(got.l1.loadMisses, want.loadMisses);
    EXPECT_EQ(got.l1.storeMisses, want.storeMisses);
    EXPECT_EQ(got.l1.fills, want.fills);
    EXPECT_EQ(got.l1.evictions, want.evictions);
}

TEST(HierarchyTargetTest, MatchesHandRolledHierarchy)
{
    const Trace trace = proxyTrace();

    // Reference: the pre-engine holes_model part-2 loop.
    auto makeLevel = [](IndexKind kind, std::uint64_t bytes,
                        unsigned ways, unsigned input_bits) {
        const CacheGeometry geom(bytes, 32, ways);
        return std::make_unique<SetAssocCache>(
            geom, makeIndexFn(kind, geom.setBits(), ways, input_bits));
    };
    TwoLevelHierarchy reference(
        makeLevel(IndexKind::IPolySkew, 8 * 1024, 2, 14),
        makeLevel(IndexKind::Modulo, 256 * 1024, 2, 18), PageMap());
    for (const auto &rec : trace) {
        if (isMemOp(rec.op))
            reference.access(rec.addr, rec.op == OpClass::Store);
    }

    // Engine path: the same configuration through the label grammar.
    const TargetSpec spec; // defaults: 8KB L1, 256KB 2-way L2
    auto target = OrgRegistry::global().buildTarget("2lvl:a2-Hp-Sk/a2",
                                                    spec);
    target->replay(trace.data(), trace.size());
    target->finish();
    const TargetStats got = target->stats();

    ASSERT_TRUE(got.hasHierarchy);
    const HoleStats &want = reference.holeStats();
    EXPECT_EQ(got.holes.l1Misses, want.l1Misses);
    EXPECT_EQ(got.holes.l2Misses, want.l2Misses);
    EXPECT_EQ(got.holes.l2Replacements, want.l2Replacements);
    EXPECT_EQ(got.holes.inclusionInvalidates, want.inclusionInvalidates);
    EXPECT_EQ(got.holes.holesCreated, want.holesCreated);
    EXPECT_EQ(got.holes.holeRefills, want.holeRefills);
    EXPECT_EQ(got.holes.aliasRemovals, want.aliasRemovals);
    EXPECT_EQ(got.l1.loads, reference.l1().stats().loads);
    EXPECT_EQ(got.l1.loadMisses, reference.l1().stats().loadMisses);
    EXPECT_EQ(got.l2.misses(), reference.l2().stats().misses());
}

TEST(CpuTargetTest, MatchesOooCoreRun)
{
    const Trace trace = proxyTrace();
    const CpuConfig cfg = CpuConfig::tableConfig("8k-ipoly-cp-pred");

    OooCore reference(cfg);
    const CpuStats want = reference.run(trace);

    CpuTarget target("cpu", cfg);
    target.replay(trace.data(), trace.size());
    target.finish();
    const TargetStats got = target.stats();

    ASSERT_TRUE(got.hasCpu);
    EXPECT_EQ(got.cpu.cycles, want.cycles);
    EXPECT_EQ(got.cpu.instructions, want.instructions);
    EXPECT_EQ(got.cpu.loads, want.loads);
    EXPECT_EQ(got.cpu.stores, want.stores);
    EXPECT_EQ(got.cpu.branches, want.branches);
    EXPECT_EQ(got.cpu.branchMispredicts, want.branchMispredicts);
    EXPECT_EQ(got.cpu.loadMisses, want.loadMisses);
    EXPECT_DOUBLE_EQ(got.cpu.ipc(), want.ipc());
}

TEST(CpuTargetTest, ChunkedFeedIsCycleIdentical)
{
    const Trace trace = proxyTrace();
    const CpuConfig cfg = CpuConfig::tableConfig("8k-conv");

    OooCore whole(cfg);
    const CpuStats want = whole.run(trace);

    // Feed in deliberately awkward chunk sizes (1, 3, 7, 64, ...).
    OooCore chunked(cfg);
    chunked.beginStream();
    const std::size_t sizes[] = {1, 3, 7, 64, 501, 4096};
    std::size_t pos = 0, si = 0;
    while (pos < trace.size()) {
        const std::size_t n =
            std::min(sizes[si++ % std::size(sizes)], trace.size() - pos);
        chunked.feed(trace.data() + pos, n);
        pos += n;
    }
    const CpuStats got = chunked.finishStream();

    EXPECT_EQ(got.cycles, want.cycles);
    EXPECT_EQ(got.instructions, want.instructions);
    EXPECT_EQ(got.branchMispredicts, want.branchMispredicts);
    EXPECT_EQ(got.loadMisses, want.loadMisses);
}

TEST(CpuTargetTest, BeginStreamResetsPipelineDependencies)
{
    const Trace trace = proxyTrace();
    const CpuConfig cfg = CpuConfig::tableConfig("8k-conv");

    // Reuse one core for a second stream of the same trace. The
    // pipeline (including register last-writer tracking) must reset
    // and the statistics window restart, so the second run lands
    // within a few percent of the first — a stale producer or a
    // rewound clock leaking across streams inflates it severalfold
    // (the regressions this test guards produced ~2x cycles).
    OooCore core(cfg);
    const CpuStats first = core.run(trace);
    core.beginStream();
    core.feed(trace.data(), trace.size());
    const CpuStats second = core.finishStream();

    EXPECT_EQ(second.instructions, first.instructions);
    EXPECT_GT(second.cycles, 0u);
    EXPECT_LT(second.cycles, first.cycles + first.cycles / 20);
    // Per-stream deltas, not cumulative counters.
    EXPECT_LE(second.loads, first.loads);
    EXPECT_LE(second.loadMisses, first.loadMisses);
}

TEST(CpuTargetTest, AddressStreamProducesAnIpcRow)
{
    std::vector<std::uint64_t> addrs;
    for (int i = 0; i < 5000; ++i)
        addrs.push_back(static_cast<std::uint64_t>(i) * 32);

    CpuTarget target("cpu", CpuConfig::tableConfig("8k-conv"));
    target.accessBatch(addrs.data(), addrs.size(), false);
    target.finish();
    const TargetStats got = target.stats();

    ASSERT_TRUE(got.hasCpu);
    EXPECT_EQ(got.cpu.instructions, addrs.size());
    EXPECT_GT(got.cpu.cycles, 0u);
    EXPECT_GT(got.cpu.ipc(), 0.0);
    EXPECT_EQ(got.l1.loads, addrs.size());
}

} // anonymous namespace
} // namespace cac
