/**
 * @file
 * Tests for the shared experiment drivers.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/organization.hh"
#include "trace/builder.hh"
#include "workloads/stride.hh"

namespace cac
{
namespace
{

TEST(Experiment, RunAddressStreamCountsLoads)
{
    OrgSpec spec;
    auto cache = makeOrganization("a2", spec);
    std::vector<std::uint64_t> addrs = {0x1000, 0x1000, 0x2000};
    CacheStats s = runAddressStream(*cache, addrs);
    EXPECT_EQ(s.loads, 3u);
    EXPECT_EQ(s.loadMisses, 2u);
}

TEST(Experiment, RunTraceMemoryFiltersMemOps)
{
    OrgSpec spec;
    auto cache = makeOrganization("a2", spec);
    Trace t;
    TraceBuilder b(t);
    b.load(0x1000, reg::r(1));
    b.alu(OpClass::IntAlu, reg::r(2));
    b.store(0x2000, reg::r(1));
    b.branch(true);
    CacheStats s = runTraceMemory(*cache, t);
    EXPECT_EQ(s.loads, 1u);
    EXPECT_EQ(s.stores, 1u);
}

TEST(Experiment, RunCpuProducesSaneRow)
{
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 5000; ++i) {
        b.load(0x1000 + (i % 64) * 8, reg::r(1));
        b.alu(OpClass::IntAlu, reg::r(2), reg::r(1));
        b.branch(i % 100 != 99, reg::r(2));
    }
    BenchmarkResult row =
        runCpu("toy", CpuConfig::paperDefault(), t);
    EXPECT_EQ(row.name, "toy");
    EXPECT_GT(row.ipc, 0.1);
    EXPECT_LE(row.ipc, 4.0);
    EXPECT_GE(row.loadMissPct, 0.0);
    EXPECT_LE(row.loadMissPct, 100.0);
}

TEST(Experiment, AveragesUsePaperConventions)
{
    std::vector<BenchmarkResult> rows = {
        {"a", 1.0, 10.0},
        {"b", 4.0, 30.0},
    };
    TableAverages avg = averageResults(rows);
    EXPECT_DOUBLE_EQ(avg.ipcGeoMean, 2.0);      // geometric
    EXPECT_DOUBLE_EQ(avg.missArithMean, 20.0);  // arithmetic
}

TEST(Experiment, Figure1PipelineEndToEnd)
{
    // Mini Figure 1: one pathological stride, four schemes.
    StrideWorkloadConfig wc;
    wc.stride = 512; // 4KB in bytes: worst case for a2
    auto addrs = makeStrideAddressTrace(wc);
    OrgSpec spec;
    double a2_miss = 0, hp_miss = 0;
    {
        auto c = makeOrganization("a2", spec);
        a2_miss = runAddressStream(*c, addrs).missRatio();
    }
    {
        auto c = makeOrganization("a2-Hp-Sk", spec);
        hp_miss = runAddressStream(*c, addrs).missRatio();
    }
    EXPECT_GT(a2_miss, 0.5);
    EXPECT_LT(hp_miss, 0.1);
}

} // anonymous namespace
} // namespace cac
