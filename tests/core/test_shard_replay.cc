/**
 * @file
 * Tests for time-sharded single-trace replay (core/shard_replay.hh):
 * the reconciliation rule (loads/stores exact, misses within the
 * documented warm-up bound), shards=1 bit-identity with monolithic
 * replay, determinism at any thread count, file vs in-memory
 * equivalence, and hierarchy targets.
 */

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/registry.hh"
#include "core/shard_replay.hh"
#include "core/sim_target.hh"
#include "trace/io.hh"
#include "workloads/spec_proxy.hh"

namespace cac
{
namespace
{

Trace
proxyTrace()
{
    // Large enough that 4 slices each hold many cache generations.
    static const Trace trace = buildSpecProxy("swim", 60000);
    return trace;
}

TargetFactory
cacheFactory(const std::string &label)
{
    return [label] {
        return OrgRegistry::global().buildTarget(label, TargetSpec{});
    };
}

/** Monolithic replay of @p trace through a fresh target. */
TargetStats
monolithic(const TargetFactory &factory, const Trace &trace)
{
    std::unique_ptr<SimTarget> target = factory();
    target->replay(trace.data(), trace.size());
    target->finish();
    return target->stats();
}

void
expectCacheStatsEqual(const CacheStats &a, const CacheStats &b,
                      const std::string &label)
{
    EXPECT_EQ(a.loads, b.loads) << label;
    EXPECT_EQ(a.stores, b.stores) << label;
    EXPECT_EQ(a.loadMisses, b.loadMisses) << label;
    EXPECT_EQ(a.storeMisses, b.storeMisses) << label;
    EXPECT_EQ(a.fills, b.fills) << label;
    EXPECT_EQ(a.evictions, b.evictions) << label;
    EXPECT_EQ(a.writebacks, b.writebacks) << label;
    EXPECT_EQ(a.invalidations, b.invalidations) << label;
    EXPECT_EQ(a.firstProbeHits, b.firstProbeHits) << label;
    EXPECT_EQ(a.secondProbeHits, b.secondProbeHits) << label;
}

std::uint64_t
absDiff(std::uint64_t a, std::uint64_t b)
{
    return a > b ? a - b : b - a;
}

TEST(ShardReplay, OneShardIsBitIdenticalToMonolithic)
{
    const Trace trace = proxyTrace();
    for (const char *label : {"a2-Hp-Sk", "hash-rehash", "victim"}) {
        const TargetFactory factory = cacheFactory(label);
        const TargetStats want = monolithic(factory, trace);
        ShardOptions opts;
        opts.shards = 1;
        const ShardedReplayResult got =
            shardedReplayTrace(factory, trace, opts);
        expectCacheStatsEqual(got.stats.l1, want.l1, label);
    }
}

TEST(ShardReplay, LoadsStoresExactAndMissesBounded)
{
    const Trace trace = proxyTrace();
    const TargetFactory factory = cacheFactory("a2-Hp-Sk");
    const TargetStats want = monolithic(factory, trace);

    // The documented bound: each shard's warm-up can misreconstruct at
    // most a cache's worth of lines (8KB / 32B = 256 blocks).
    const std::uint64_t blocks = 256;
    for (unsigned shards : {2u, 4u, 7u}) {
        ShardOptions opts;
        opts.shards = shards;
        const ShardedReplayResult got =
            shardedReplayTrace(factory, trace, opts);

        EXPECT_EQ(got.stats.l1.loads, want.l1.loads) << shards;
        EXPECT_EQ(got.stats.l1.stores, want.l1.stores) << shards;
        const std::uint64_t bound = shards * blocks;
        EXPECT_LE(absDiff(got.stats.l1.loadMisses, want.l1.loadMisses),
                  bound)
            << shards;
        EXPECT_LE(
            absDiff(got.stats.l1.storeMisses, want.l1.storeMisses),
            bound)
            << shards;

        // The slices partition the trace contiguously.
        ASSERT_EQ(got.slices.size(), shards);
        EXPECT_EQ(got.slices.front().begin, 0u);
        EXPECT_EQ(got.slices.back().end, trace.size());
        for (unsigned i = 1; i < shards; ++i) {
            EXPECT_EQ(got.slices[i].begin, got.slices[i - 1].end) << i;
            EXPECT_LE(got.slices[i].warmupBegin, got.slices[i].begin)
                << i;
        }
    }

    // Even with no warm-up at all, loads/stores stay exact (only the
    // miss error grows).
    ShardOptions cold;
    cold.shards = 4;
    cold.warmupRecords = 0;
    const ShardedReplayResult got =
        shardedReplayTrace(factory, trace, cold);
    EXPECT_EQ(got.stats.l1.loads, want.l1.loads);
    EXPECT_EQ(got.stats.l1.stores, want.l1.stores);
    EXPECT_LE(absDiff(got.stats.l1.loadMisses, want.l1.loadMisses),
              4 * blocks);
}

TEST(ShardReplay, DeterministicAtAnyThreadCount)
{
    const Trace trace = proxyTrace();
    const TargetFactory factory = cacheFactory("a2-Hp-Sk");
    ShardOptions opts;
    opts.shards = 4;

    opts.threads = 1;
    const ShardedReplayResult serial =
        shardedReplayTrace(factory, trace, opts);
    for (unsigned threads : {2u, 4u, 8u}) {
        opts.threads = threads;
        const ShardedReplayResult parallel =
            shardedReplayTrace(factory, trace, opts);
        expectCacheStatsEqual(parallel.stats.l1, serial.stats.l1,
                              "threads=" + std::to_string(threads));
    }
}

TEST(ShardReplay, FileReplayMatchesInMemory)
{
    const Trace trace = proxyTrace();
    const std::string path =
        (std::filesystem::temp_directory_path() / "cac_shard_file.trc")
            .string();
    writeTrace(trace, path);

    const TargetFactory factory = cacheFactory("a2-Hp-Sk");
    ShardOptions opts;
    opts.shards = 4;
    const ShardedReplayResult mem =
        shardedReplayTrace(factory, trace, opts);
    const ShardedReplayResult file =
        shardedReplayFile(factory, path, opts);
    expectCacheStatsEqual(file.stats.l1, mem.stats.l1, "file-vs-mem");
    std::remove(path.c_str());
}

TEST(ShardReplay, HierarchyTargetsShard)
{
    const Trace trace = proxyTrace();
    const TargetFactory factory = cacheFactory("2lvl:a2-Hp-Sk/a4");
    const TargetStats want = monolithic(factory, trace);

    ShardOptions opts;
    opts.shards = 4;
    const ShardedReplayResult got =
        shardedReplayTrace(factory, trace, opts);
    ASSERT_TRUE(got.stats.hasHierarchy);
    EXPECT_EQ(got.stats.l1.loads, want.l1.loads);
    EXPECT_EQ(got.stats.l1.stores, want.l1.stores);
    // L2 is 256KB / 32B = 8192 blocks; L1 adds 256.
    const std::uint64_t bound = 4 * (8192 + 256);
    EXPECT_LE(absDiff(got.stats.l1.misses(), want.l1.misses()), bound);
    EXPECT_LE(absDiff(got.stats.l2.misses(), want.l2.misses()), bound);
}

TEST(ShardReplay, MultiCoreTargetsFallBackToMonolithic)
{
    // Coherence state spans the whole stream: a cold-started slice
    // would miss the invalidations and interventions earlier slices
    // caused, so multi-core targets must reject sharding explicitly
    // (monolithic fallback with a note, like Cpu) instead of summing
    // silently wrong per-slice deltas.
    const Trace trace = proxyTrace();
    const TargetFactory factory = cacheFactory("mc:2xa2/a4");
    const TargetStats want = monolithic(factory, trace);

    ShardOptions opts;
    opts.shards = 4;
    const ShardedReplayResult got =
        shardedReplayTrace(factory, trace, opts);
    EXPECT_TRUE(got.fellBack);
    EXPECT_NE(got.note.find("multi-core"), std::string::npos)
        << got.note;
    EXPECT_TRUE(got.error.ok()) << got.error.message();
    ASSERT_TRUE(got.stats.hasMultiCore);
    expectCacheStatsEqual(got.stats.l1, want.l1, "mc-fallback");
    EXPECT_EQ(got.stats.l2.misses(), want.l2.misses());

    // shards=1 never enters the parallel path, so it succeeds and is
    // bit-identical to monolithic replay.
    opts.shards = 1;
    const ShardedReplayResult one =
        shardedReplayTrace(factory, trace, opts);
    EXPECT_FALSE(one.fellBack);
    ASSERT_TRUE(one.stats.hasMultiCore);
    expectCacheStatsEqual(one.stats.l1, want.l1, "mc-one-shard");
    EXPECT_EQ(one.stats.mc.interventions, want.mc.interventions);
    EXPECT_EQ(one.stats.mc.invalidationMessages,
              want.mc.invalidationMessages);
}

} // anonymous namespace
} // namespace cac
