/**
 * @file
 * Tests for the SweepRunner simulation engine: grid ordering, thread
 * determinism, and agreement with the serial experiment drivers.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/experiment.hh"
#include "core/registry.hh"
#include "core/sweep.hh"
#include "trace/builder.hh"
#include "trace/io.hh"
#include "workloads/stride.hh"

namespace cac
{
namespace
{

std::vector<std::uint64_t>
strideAddrs(std::uint64_t stride)
{
    StrideWorkloadConfig wc;
    wc.stride = stride;
    wc.sweeps = 16;
    return makeStrideAddressTrace(wc);
}

Trace
smallTrace()
{
    Trace t;
    TraceBuilder b(t);
    for (int i = 0; i < 2000; ++i) {
        b.load(0x4000 + (i % 512) * 32, reg::r(1));
        b.store(0x9000 + (i % 64) * 32, reg::r(1));
    }
    return t;
}

/** The 4-org x 3-workload grid the determinism test runs. */
SweepRunner
makeGrid(unsigned threads)
{
    SweepRunner sweep(threads);
    sweep.addOrgs({"a2", "a2-Hp-Sk", "victim"});
    sweep.addOrg("custom-full", [] {
        OrgSpec spec;
        return makeOrganization("full", spec);
    });
    sweep.addAddressWorkload("stride-1", strideAddrs(1));
    sweep.addAddressWorkload("stride-512",
                             [] { return strideAddrs(512); });
    sweep.addTraceWorkload("mixed-trace", smallTrace());
    return sweep;
}

void
expectCellsEqual(const std::vector<SweepCell> &a,
                 const std::vector<SweepCell> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload) << i;
        EXPECT_EQ(a[i].org, b[i].org) << i;
        EXPECT_EQ(a[i].cacheName, b[i].cacheName) << i;
        EXPECT_EQ(a[i].stats.loads, b[i].stats.loads) << i;
        EXPECT_EQ(a[i].stats.stores, b[i].stats.stores) << i;
        EXPECT_EQ(a[i].stats.loadMisses, b[i].stats.loadMisses) << i;
        EXPECT_EQ(a[i].stats.storeMisses, b[i].stats.storeMisses) << i;
        EXPECT_EQ(a[i].stats.fills, b[i].stats.fills) << i;
        EXPECT_EQ(a[i].stats.evictions, b[i].stats.evictions) << i;
    }
}

TEST(SweepRunner, GridIsWorkloadMajorInInsertionOrder)
{
    SweepRunner sweep = makeGrid(1);
    ASSERT_EQ(sweep.numCells(), 12u);
    const auto cells = sweep.run();
    ASSERT_EQ(cells.size(), 12u);

    const std::vector<std::string> orgs = {"a2", "a2-Hp-Sk", "victim",
                                           "custom-full"};
    const std::vector<std::string> workloads = {"stride-1", "stride-512",
                                                "mixed-trace"};
    for (std::size_t w = 0; w < workloads.size(); ++w) {
        for (std::size_t o = 0; o < orgs.size(); ++o) {
            const SweepCell &cell = cells[w * orgs.size() + o];
            EXPECT_EQ(cell.workload, workloads[w]);
            EXPECT_EQ(cell.org, orgs[o]);
        }
    }
}

TEST(SweepRunner, ThreadCountDoesNotChangeResults)
{
    const auto serial = makeGrid(1).run();
    const auto threaded = makeGrid(4).run();
    expectCellsEqual(serial, threaded);

    // Oversubscribed relative to the 12 cells: still identical.
    const auto oversubscribed = makeGrid(64).run();
    expectCellsEqual(serial, oversubscribed);
}

TEST(SweepRunner, CellsMatchTheSerialDrivers)
{
    const auto cells = makeGrid(4).run();

    // stride-512 x a2 (cell [1][0]) against runAddressStream.
    {
        OrgSpec spec;
        auto cache = makeOrganization("a2", spec);
        const CacheStats want =
            runAddressStream(*cache, strideAddrs(512));
        EXPECT_EQ(cells[4].stats.loads, want.loads);
        EXPECT_EQ(cells[4].stats.loadMisses, want.loadMisses);
    }
    // mixed-trace x victim (cell [2][2]) against runTraceMemory.
    {
        OrgSpec spec;
        auto cache = makeOrganization("victim", spec);
        const Trace t = smallTrace();
        const CacheStats want = runTraceMemory(*cache, t);
        EXPECT_EQ(cells[10].stats.loads, want.loads);
        EXPECT_EQ(cells[10].stats.stores, want.stores);
        EXPECT_EQ(cells[10].stats.loadMisses, want.loadMisses);
        EXPECT_EQ(cells[10].stats.storeMisses, want.storeMisses);
    }
}

TEST(SweepRunner, SpecIsCapturedAtAddTime)
{
    SweepRunner sweep(2);
    OrgSpec small;
    small.sizeBytes = 4 * 1024;
    sweep.setSpec(small);
    sweep.addOrg("a2");
    OrgSpec big;
    big.sizeBytes = 16 * 1024;
    sweep.setSpec(big);
    sweep.addOrg("a4");
    sweep.addAddressWorkload("stride-1", strideAddrs(1));

    const auto cells = sweep.run();
    ASSERT_EQ(cells.size(), 2u);
    EXPECT_NE(cells[0].cacheName.find("4KB"), std::string::npos)
        << cells[0].cacheName;
    EXPECT_NE(cells[1].cacheName.find("16KB"), std::string::npos)
        << cells[1].cacheName;
}

TEST(SweepRunner, EmptyGridRunsToNothing)
{
    SweepRunner sweep(4);
    sweep.addOrg("a2");
    EXPECT_EQ(sweep.numCells(), 0u);
    EXPECT_TRUE(sweep.run().empty());
}

TEST(SweepRunner, CsvHasHeaderAndOneLinePerCell)
{
    const auto cells = makeGrid(2).run();
    const std::string csv = sweepCsv(cells);
    std::size_t lines = 0;
    for (char c : csv) {
        if (c == '\n')
            ++lines;
    }
    EXPECT_EQ(lines, cells.size() + 1);
    EXPECT_EQ(csv.rfind("workload,organization,cache,loads,", 0), 0u);
}

TEST(SweepRunnerDeath, UnknownRegistryLabelIsFatal)
{
    SweepRunner sweep(1);
    EXPECT_EXIT(sweep.addOrg("wombat"),
                ::testing::ExitedWithCode(1), "unknown");
}

/** Extended-target grid: cache, hierarchy and CPU rows side by side. */
SweepRunner
makeTargetGrid(unsigned threads)
{
    SweepRunner sweep(threads);
    sweep.addTarget("a2-Hp-Sk");
    sweep.addTarget("2lvl:a2-Hp-Sk/a4");
    sweep.addTarget("cpu:8k-conv");
    sweep.addAddressWorkload("stride-512", strideAddrs(512));
    sweep.addTraceWorkload("mixed-trace", smallTrace());
    return sweep;
}

TEST(SweepRunnerTargets, MixedTargetKindsProduceTheRightSections)
{
    const auto cells = makeTargetGrid(2).run();
    ASSERT_EQ(cells.size(), 6u);

    for (std::size_t w = 0; w < 2; ++w) {
        const SweepCell &cache = cells[w * 3 + 0];
        const SweepCell &hier = cells[w * 3 + 1];
        const SweepCell &cpu = cells[w * 3 + 2];

        EXPECT_EQ(cache.target.kind, TargetKind::Cache);
        EXPECT_FALSE(cache.target.hasHierarchy);
        EXPECT_FALSE(cache.target.hasCpu);
        EXPECT_GT(cache.stats.loads, 0u);

        EXPECT_EQ(hier.target.kind, TargetKind::Hierarchy);
        EXPECT_TRUE(hier.target.hasHierarchy);
        EXPECT_GT(hier.target.l2.accesses(), 0u);

        EXPECT_EQ(cpu.target.kind, TargetKind::Cpu);
        EXPECT_TRUE(cpu.target.hasCpu);
        EXPECT_GT(cpu.target.cpu.cycles, 0u);
        EXPECT_GT(cpu.target.cpu.ipc(), 0.0);

        // The compat stats field mirrors the target's L1 section.
        EXPECT_EQ(cpu.stats.loads, cpu.target.l1.loads);
    }
}

TEST(SweepRunnerTargets, TargetGridIsThreadCountInvariant)
{
    const auto serial = makeTargetGrid(1).run();
    const auto threaded = makeTargetGrid(8).run();
    expectCellsEqual(serial, threaded);
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].target.cpu.cycles,
                  threaded[i].target.cpu.cycles) << i;
        EXPECT_EQ(serial[i].target.holes.holesCreated,
                  threaded[i].target.holes.holesCreated) << i;
    }
}

TEST(SweepRunnerTargets, StreamedWorkloadMatchesLoadedWorkload)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "cac_sweep_stream.trc")
            .string();
    writeTrace(smallTrace(), path);

    auto makeSweep = [&](bool streamed) {
        SweepRunner sweep(2);
        sweep.addTarget("a2-Hp-Sk");
        sweep.addTarget("2lvl:a2/a4");
        sweep.addTarget("cpu:8k-conv");
        if (streamed)
            sweep.addTraceFileWorkload("t", path, 123);
        else
            sweep.addTraceWorkload("t", readTrace(path));
        return sweep;
    };

    const auto loaded = makeSweep(false).run();
    const auto streamed = makeSweep(true).run();
    expectCellsEqual(loaded, streamed);
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].target.cpu.cycles,
                  streamed[i].target.cpu.cycles) << i;
    }
    std::remove(path.c_str());
}

TEST(SweepRunnerDeath, MissingStreamedTraceFailsAtAddTime)
{
    SweepRunner sweep(1);
    EXPECT_EXIT(sweep.addTraceFileWorkload("t", "/nonexistent/x.trc"),
                ::testing::ExitedWithCode(1), "cannot open");
}

} // anonymous namespace
} // namespace cac
