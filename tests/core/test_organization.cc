/**
 * @file
 * Tests for the named cache-organization factory.
 */

#include <gtest/gtest.h>

#include "core/organization.hh"

namespace cac
{
namespace
{

TEST(Organization, BuildsEveryStandardLabel)
{
    OrgSpec spec;
    for (const auto &label : standardComparisonLabels()) {
        auto cache = makeOrganization(label, spec);
        ASSERT_NE(cache, nullptr) << label;
        EXPECT_FALSE(cache->access(0x1234, false).hit) << label;
        EXPECT_TRUE(cache->access(0x1234, false).hit) << label;
    }
}

TEST(Organization, WaysParsedFromLabel)
{
    OrgSpec spec;
    auto a4 = makeOrganization("a4", spec);
    EXPECT_EQ(a4->geometry().ways(), 4u);
    auto dm = makeOrganization("dm", spec);
    EXPECT_EQ(dm->geometry().ways(), 1u);
}

TEST(Organization, CapacityRespected)
{
    OrgSpec spec;
    spec.sizeBytes = 16 * 1024;
    for (const auto &label : standardComparisonLabels()) {
        auto cache = makeOrganization(label, spec);
        EXPECT_EQ(cache->geometry().sizeBytes(), 16u * 1024) << label;
    }
}

TEST(Organization, SkewLabelsProduceSkewedPlacement)
{
    OrgSpec spec;
    auto skew = makeOrganization("a2-Hp-Sk", spec);
    // Three 4KB-congruent blocks coexist only under the hash schemes.
    for (int round = 0; round < 20; ++round)
        for (std::uint64_t a : {0x0000ull, 0x1000ull, 0x2000ull})
            skew->access(a, false);
    EXPECT_LE(skew->stats().loadMisses, 6u);
}

TEST(Organization, VictimUsesBufferSize)
{
    OrgSpec spec;
    spec.victimBlocks = 2;
    auto cache = makeOrganization("victim", spec);
    EXPECT_NE(cache->name().find("victim+2"), std::string::npos);
}

TEST(Organization, ColumnPolyIsTwoProbe)
{
    OrgSpec spec;
    auto cache = makeOrganization("column-poly", spec);
    for (int i = 0; i < 20; ++i) {
        cache->access(0x0000, false);
        cache->access(0x2000, false);
    }
    EXPECT_GT(cache->stats().firstProbeHits
                  + cache->stats().secondProbeHits,
              0u);
}

TEST(OrganizationDeath, UnknownLabelIsFatal)
{
    OrgSpec spec;
    EXPECT_EXIT((void)makeOrganization("wombat", spec),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(Organization, StandardSetCoversThePaperComparison)
{
    auto labels = standardComparisonLabels();
    for (const char *needed : {"dm", "a2", "a4", "a2-Hx-Sk", "a2-Hp",
                               "a2-Hp-Sk", "victim", "hash-rehash",
                               "column-poly", "full"}) {
        EXPECT_NE(std::find(labels.begin(), labels.end(), needed),
                  labels.end())
            << needed;
    }
}

} // anonymous namespace
} // namespace cac
