/**
 * @file
 * Graceful-degradation tests for the parallel engine: a poisoned sweep
 * cell is quarantined while the rest of the grid completes, degraded
 * reads surface in the CSV, blown per-cell deadlines cancel with a
 * Timeout error, sharded replay falls back to a monolithic pass when a
 * shard dies, and parallelFor contains worker exceptions.
 */

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "core/registry.hh"
#include "core/shard_replay.hh"
#include "core/sim_target.hh"
#include "core/sweep.hh"
#include "trace/io.hh"
#include "workloads/spec_proxy.hh"

namespace cac
{
namespace
{

std::string
tmpPath(const char *name)
{
    return (std::filesystem::temp_directory_path() / name).string();
}

/** XOR one bit into the file at @p offset. */
void
flipBit(const std::string &path, long offset, int mask)
{
    std::FILE *f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    const int byte = std::fgetc(f);
    ASSERT_NE(byte, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(byte ^ mask, f);
    std::fclose(f);
}

/** Byte offset of CACTRC02 chunk @p seq with @p c records per chunk. */
long
chunkOffset(std::uint64_t seq, std::uint64_t c)
{
    return static_cast<long>(24 + seq * (20 + c * 24));
}

/** Write a proxy trace and corrupt one payload bit in chunk 2. */
std::string
corruptTracePath(const char *name)
{
    const std::string path = tmpPath(name);
    writeTrace(buildSpecProxy("swim", 2000), path, TraceFormat::V2,
               100);
    flipBit(path, chunkOffset(2, 100) + 20 + 11, 0x20);
    return path;
}

// ---- sweep quarantine ------------------------------------------------

TEST(Resilience, PoisonedCellDoesNotTakeDownTheGrid)
{
    const std::string bad = corruptTracePath("cac_res_poison.trc");

    SweepRunner sweep(2);
    sweep.addOrgs({"a2", "victim"});
    sweep.addTraceFileWorkload("bad", bad, 100);
    sweep.addTraceWorkload("good", buildSpecProxy("swim", 2000));

    const std::vector<SweepCell> cells = sweep.run();
    ASSERT_EQ(cells.size(), 4u);
    for (const SweepCell &cell : cells) {
        if (cell.workload == "bad") {
            EXPECT_TRUE(cell.failed) << cell.org;
            EXPECT_EQ(cell.error.code, ErrorCode::ChecksumMismatch)
                << cell.org;
            EXPECT_EQ(cell.stats.loads, 0u) << cell.org;
        } else {
            EXPECT_FALSE(cell.failed) << cell.org;
            EXPECT_TRUE(cell.error.ok()) << cell.org;
            EXPECT_GT(cell.stats.loads, 0u) << cell.org;
        }
    }
    std::remove(bad.c_str());
}

TEST(Resilience, SkipPolicyCompletesTheCellWithExactDrops)
{
    const std::string bad = corruptTracePath("cac_res_skip.trc");

    SweepRunner sweep(1);
    sweep.addOrg("a2");
    TraceReaderOptions skip;
    skip.policy = ReadPolicy::Skip;
    sweep.setReadOptions(skip);
    sweep.addTraceFileWorkload("bad", bad, 100);

    const std::vector<SweepCell> cells = sweep.run();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_FALSE(cells[0].failed);
    EXPECT_EQ(cells[0].read.droppedRecords, 100u);
    EXPECT_EQ(cells[0].read.crcErrors, 1u);
    EXPECT_GT(cells[0].stats.loads, 0u);
    std::remove(bad.c_str());
}

TEST(Resilience, SweepCsvSurfacesDegradationOnlyWhenPresent)
{
    // Healthy sweep: the historical column set, byte for byte.
    SweepRunner healthy(1);
    healthy.addOrg("a2");
    healthy.addTraceWorkload("good", buildSpecProxy("swim", 1000));
    const std::string healthy_csv = sweepCsv(healthy.run());
    EXPECT_EQ(healthy_csv.find("dropped_records"), std::string::npos)
        << healthy_csv;
    EXPECT_EQ(healthy_csv.find("status"), std::string::npos)
        << healthy_csv;

    // Degraded sweep: dropped_records + status columns appear on
    // every row.
    const std::string bad = corruptTracePath("cac_res_csv.trc");
    SweepRunner degraded(1);
    degraded.addOrg("a2");
    TraceReaderOptions skip;
    skip.policy = ReadPolicy::Skip;
    degraded.setReadOptions(skip);
    degraded.addTraceFileWorkload("bad", bad, 100);
    degraded.addTraceWorkload("good", buildSpecProxy("swim", 1000));
    const std::string csv = sweepCsv(degraded.run());
    EXPECT_NE(csv.find("dropped_records,status"), std::string::npos)
        << csv;
    EXPECT_NE(csv.find(",degraded"), std::string::npos) << csv;
    EXPECT_NE(csv.find(",100,"), std::string::npos) << csv;
    EXPECT_NE(csv.find(",ok"), std::string::npos) << csv;

    // Failed cells are labelled as such.
    SweepRunner failing(1);
    failing.addOrg("a2");
    failing.addTraceFileWorkload("bad", bad, 100); // strict default
    const std::string failed_csv = sweepCsv(failing.run());
    EXPECT_NE(failed_csv.find(",failed"), std::string::npos)
        << failed_csv;
    std::remove(bad.c_str());
}

TEST(Resilience, BlownCellDeadlineCancelsWithTimeout)
{
    const std::string path = tmpPath("cac_res_deadline.trc");
    writeTrace(buildSpecProxy("swim", 20000), path, TraceFormat::V2,
               100);

    // ~2 ms of injected latency per raw read makes the 200-chunk
    // replay blow a 5 ms budget after a handful of chunks.
    TraceReaderOptions slow;
    slow.chunkRecords = 100;
    FaultInjector::Spec spec;
    spec.latencyUs = 2000;
    slow.inject = spec;

    SweepRunner sweep(1);
    sweep.addOrg("a2");
    sweep.setCellDeadline(5);
    sweep.addTraceFileWorkload("slow", path, slow);

    const std::vector<SweepCell> cells = sweep.run();
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_TRUE(cells[0].failed);
    EXPECT_EQ(cells[0].error.code, ErrorCode::Timeout);
    EXPECT_NE(cells[0].error.message().find("deadline"),
              std::string::npos)
        << cells[0].error.message();
    std::remove(path.c_str());
}

TEST(Resilience, DeadlineDoesNotPerturbHealthyCells)
{
    // The same grid with and without a generous deadline produces
    // identical stats (deadline slicing must not change replay).
    SweepRunner plain(1);
    plain.addOrgs({"a2", "a2-Hp-Sk"});
    plain.addTraceWorkload("t", buildSpecProxy("swim", 5000));
    const std::vector<SweepCell> want = plain.run();

    SweepRunner guarded(1);
    guarded.addOrgs({"a2", "a2-Hp-Sk"});
    guarded.addTraceWorkload("t", buildSpecProxy("swim", 5000));
    guarded.setCellDeadline(60000);
    const std::vector<SweepCell> got = guarded.run();

    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_FALSE(got[i].failed);
        EXPECT_EQ(got[i].stats.loads, want[i].stats.loads) << i;
        EXPECT_EQ(got[i].stats.loadMisses, want[i].stats.loadMisses)
            << i;
        EXPECT_EQ(got[i].stats.evictions, want[i].stats.evictions)
            << i;
    }
}

// ---- sharded replay fallback -----------------------------------------

TEST(Resilience, ShardFailureFallsBackToMonolithicReplay)
{
    const std::string bad = corruptTracePath("cac_res_shard.trc");
    const TargetSpec spec;
    TargetFactory factory = [&spec] {
        return OrgRegistry::global().buildTarget("a2", spec);
    };

    // The caller asks for Skip; shards read strictly, so the damaged
    // slice poisons its shard and the engine falls back to one
    // monolithic Skip replay.
    ShardOptions opts;
    opts.shards = 4;
    opts.threads = 2;
    opts.read.policy = ReadPolicy::Skip;
    const ShardedReplayResult result =
        shardedReplayFile(factory, bad, opts);

    EXPECT_TRUE(result.fellBack);
    EXPECT_FALSE(result.note.empty());
    EXPECT_TRUE(result.error.ok()) << result.error.message();
    EXPECT_EQ(result.read.droppedRecords, 100u);

    // The fallback result equals a direct monolithic Skip replay.
    auto target = OrgRegistry::global().buildTarget("a2", spec);
    TraceReaderOptions skip;
    skip.policy = ReadPolicy::Skip;
    TraceReader reader(bad, skip);
    ASSERT_TRUE(tryReplayAll(reader, *target));
    target->finish();
    EXPECT_EQ(result.stats.l1.loads, target->stats().l1.loads);
    EXPECT_EQ(result.stats.l1.loadMisses,
              target->stats().l1.loadMisses);
    EXPECT_FALSE(result.complete()); // degraded, and says so
    std::remove(bad.c_str());
}

TEST(Resilience, ShardedReplayOfHealthyFileIsComplete)
{
    const std::string path = tmpPath("cac_res_shard_ok.trc");
    writeTrace(buildSpecProxy("swim", 4000), path, TraceFormat::V2,
               100);
    const TargetSpec spec;
    TargetFactory factory = [&spec] {
        return OrgRegistry::global().buildTarget("a2", spec);
    };
    ShardOptions opts;
    opts.shards = 4;
    opts.threads = 2;
    const ShardedReplayResult result =
        shardedReplayFile(factory, path, opts);
    EXPECT_FALSE(result.fellBack);
    EXPECT_TRUE(result.complete());
    EXPECT_EQ(result.read.droppedRecords, 0u);
    std::remove(path.c_str());
}

TEST(Resilience, ShardedReplayReportsUnopenableFileAsError)
{
    const TargetSpec spec;
    TargetFactory factory = [&spec] {
        return OrgRegistry::global().buildTarget("a2", spec);
    };
    ShardOptions opts;
    opts.shards = 2;
    const ShardedReplayResult result = shardedReplayFile(
        factory, "/nonexistent/path/x.trc", opts);
    EXPECT_FALSE(result.error.ok());
    EXPECT_EQ(result.error.code, ErrorCode::OpenFailed);
}

// ---- parallelFor containment -----------------------------------------

TEST(Resilience, ParallelForContainsAndRethrowsWorkerExceptions)
{
    std::atomic<unsigned> completed{0};
    EXPECT_THROW(
        parallelFor(4, 32,
                    [&](std::size_t i) {
                        if (i == 7)
                            throw std::runtime_error("poisoned");
                        ++completed;
                    }),
        std::runtime_error);
    // Every other iteration still ran: one failure does not strand
    // the remaining work items.
    EXPECT_EQ(completed.load(), 31u);
}

TEST(Resilience, ParallelForInlinePathPropagates)
{
    EXPECT_THROW(parallelFor(1, 4,
                             [](std::size_t i) {
                                 if (i == 2)
                                     throw std::runtime_error("x");
                             }),
                 std::runtime_error);
}

} // anonymous namespace
} // namespace cac
