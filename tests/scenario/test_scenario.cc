/**
 * @file
 * Tests for the scenario grammar and composition: mix-label parsing
 * (including the unknown-workload diagnostics), ASID address windows,
 * quantum scheduling, phase shifts and schedule bookkeeping.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "scenario/scenario.hh"
#include "trace/builder.hh"

namespace cac
{
namespace
{

ScenarioSpec
parseOk(const std::string &label)
{
    std::string error;
    const auto spec = parseScenarioLabel(label, &error);
    EXPECT_TRUE(spec.has_value()) << error;
    return spec.value_or(ScenarioSpec{});
}

std::string
parseError(const std::string &label)
{
    std::string error;
    const auto spec = parseScenarioLabel(label, &error);
    EXPECT_FALSE(spec.has_value()) << "parsed: " << label;
    return error;
}

TEST(ScenarioGrammar, PrefixDetection)
{
    EXPECT_TRUE(isScenarioLabel("mix:swim+tomcatv"));
    EXPECT_FALSE(isScenarioLabel("a2-Hp-Sk"));
    EXPECT_FALSE(isScenarioLabel("swim"));
}

TEST(ScenarioGrammar, ProgramsAndOptions)
{
    const ScenarioSpec spec =
        parseOk("mix:swim+tomcatv@q=50k,flush,phase=10k,asid=4m,"
                "n=30k,seed=7");
    ASSERT_EQ(spec.programs.size(), 2u);
    EXPECT_EQ(spec.programs[0], "swim");
    EXPECT_EQ(spec.programs[1], "tomcatv");
    EXPECT_EQ(spec.config.quantumRecords, 50000u);
    EXPECT_EQ(spec.config.policy, SwitchPolicy::ColdFlush);
    EXPECT_EQ(spec.config.phaseRecords, 10000u);
    EXPECT_EQ(spec.config.asidStrideBytes, 4000000u);
    EXPECT_EQ(spec.config.programRecords, 30000u);
    EXPECT_EQ(spec.config.seed, 7u);
}

TEST(ScenarioGrammar, DefaultsAndAtomKinds)
{
    const ScenarioSpec spec = parseOk("mix:stride512+li+trace:x.trc");
    ASSERT_EQ(spec.programs.size(), 3u);
    EXPECT_EQ(spec.config.policy, SwitchPolicy::WarmKeep);
    EXPECT_EQ(spec.config.quantumRecords, 50000u);
    EXPECT_EQ(spec.config.phaseRecords, 0u);
}

TEST(ScenarioGrammar, UnknownWorkloadDiagnostic)
{
    const std::string error = parseError("mix:swimm+tomcatv@q=5k");
    EXPECT_NE(error.find("unknown workload 'swimm'"), std::string::npos)
        << error;
    // The diagnostic lists what would have worked.
    EXPECT_NE(error.find("swim"), std::string::npos);
    EXPECT_NE(error.find("strideN"), std::string::npos);
    EXPECT_NE(error.find("trace:PATH"), std::string::npos);
}

TEST(ScenarioGrammar, MalformedLabels)
{
    EXPECT_NE(parseError("mix:@q=5k").find("no programs"),
              std::string::npos);
    EXPECT_NE(parseError("mix:swim+@q=5k").find("empty program"),
              std::string::npos);
    EXPECT_NE(parseError("mix:swim@").find("empty option"),
              std::string::npos);
    EXPECT_NE(parseError("mix:swim@zz=1").find("bad option 'zz=1'"),
              std::string::npos);
    EXPECT_NE(parseError("mix:swim@q=").find("bad option"),
              std::string::npos);
    EXPECT_NE(parseError("mix:swim@q=0").find("quantum"),
              std::string::npos);
    EXPECT_NE(parseError("a2-Hp-Sk").find("mix:"), std::string::npos);
    // "stride" with no digits is not a stride atom.
    EXPECT_NE(parseError("mix:stride").find("unknown workload"),
              std::string::npos);
}

/** Addresses of every memory op attributed to @p program's segments. */
std::pair<std::uint64_t, std::uint64_t>
addressRange(const Scenario &scenario, unsigned program)
{
    std::uint64_t lo = ~std::uint64_t{0}, hi = 0;
    for (const Scenario::Segment &seg : scenario.schedule()) {
        if (seg.program != program)
            continue;
        for (std::size_t i = 0; i < seg.count; ++i) {
            const TraceRecord &rec =
                scenario.composed()[seg.offset + i];
            if (!isMemOp(rec.op))
                continue;
            lo = std::min(lo, rec.addr);
            hi = std::max(hi, rec.addr);
        }
    }
    return {lo, hi};
}

TEST(ScenarioComposition, AsidWindowsAreDisjoint)
{
    const auto scenario =
        buildScenario("mix:swim+tomcatv+gcc@q=2k,n=10k");
    ASSERT_EQ(scenario->programNames().size(), 3u);
    const auto r0 = addressRange(*scenario, 0);
    const auto r1 = addressRange(*scenario, 1);
    const auto r2 = addressRange(*scenario, 2);
    EXPECT_LT(r0.second, r1.first);
    EXPECT_LT(r1.second, r2.first);
    // Window stride is the documented default.
    EXPECT_GE(r1.first, std::uint64_t{1} << 21);
}

TEST(ScenarioComposition, ScheduleCoversComposedTraceExactly)
{
    const auto scenario = buildScenario("mix:li+compress@q=3k,n=10k");
    std::size_t covered = 0;
    std::size_t expect_offset = 0;
    for (const Scenario::Segment &seg : scenario->schedule()) {
        EXPECT_EQ(seg.offset, expect_offset);
        EXPECT_GT(seg.count, 0u);
        expect_offset += seg.count;
        covered += seg.count;
    }
    EXPECT_EQ(covered, scenario->composed().size());
    // Adjacent segments always switch programs (same-program slices
    // merge), so numSwitches() counts real context switches.
    const auto &sched = scenario->schedule();
    for (std::size_t i = 1; i < sched.size(); ++i)
        EXPECT_NE(sched[i].program, sched[i - 1].program);
    EXPECT_EQ(scenario->numSwitches(), sched.size() - 1);
}

TEST(ScenarioComposition, QuantumBoundsSliceLengths)
{
    const auto scenario = buildScenario("mix:li+compress@q=2k,n=9k");
    const auto &sched = scenario->schedule();
    // While both programs are live, every slice is at most one
    // quantum; merged tail slices (one program left) may be longer.
    for (std::size_t i = 0; i + 2 < sched.size(); ++i)
        EXPECT_LE(sched[i].count, 2000u);
}

TEST(ScenarioComposition, DeterministicRebuild)
{
    const std::string label = "mix:swim+wave5@q=5k,n=20k,seed=3";
    const auto a = buildScenario(label);
    const auto b = buildScenario(label);
    ASSERT_EQ(a->composed().size(), b->composed().size());
    for (std::size_t i = 0; i < a->composed().size(); ++i) {
        EXPECT_EQ(a->composed()[i].addr, b->composed()[i].addr);
        EXPECT_EQ(a->composed()[i].pc, b->composed()[i].pc);
        EXPECT_EQ(a->composed()[i].op, b->composed()[i].op);
    }
}

TEST(ScenarioComposition, PhaseShiftRotatesStreams)
{
    const auto base = buildScenario("mix:swim+swim@q=5k,n=20k");
    const auto shifted =
        buildScenario("mix:swim+swim@q=5k,n=20k,phase=1k");
    ASSERT_EQ(base->composed().size(), shifted->composed().size());
    // Program 0 (phase 0*1k) is identical; program 1 (phase 1*1k) is
    // rotated, so its first segment differs.
    const auto &b0 = base->schedule()[0];
    const auto &s0 = shifted->schedule()[0];
    ASSERT_EQ(b0.program, 0u);
    ASSERT_EQ(s0.program, 0u);
    bool first_differs = false;
    for (std::size_t i = 0; i < b0.count && !first_differs; ++i) {
        first_differs = base->composed()[i].addr
                        != shifted->composed()[i].addr;
    }
    EXPECT_FALSE(first_differs);
    const auto &b1 = base->schedule()[1];
    const auto &s1 = shifted->schedule()[1];
    ASSERT_EQ(b1.program, 1u);
    ASSERT_EQ(s1.program, 1u);
    bool second_differs = false;
    for (std::size_t i = 0; i < std::min(b1.count, s1.count); ++i) {
        if (base->composed()[b1.offset + i].addr
            != shifted->composed()[s1.offset + i].addr) {
            second_differs = true;
            break;
        }
    }
    EXPECT_TRUE(second_differs);
}

TEST(ScenarioComposition, RelocateAndRotateHelpers)
{
    Trace trace;
    TraceBuilder builder(trace);
    builder.load(0x1000, reg::r(1));
    builder.alu(OpClass::IntAlu, reg::r(2), reg::r(1));
    builder.store(0x2000, reg::r(2));
    const std::uint32_t pc0 = trace[0].pc;

    relocateTrace(trace, 0x100000, 0x400);
    EXPECT_EQ(trace[0].addr, 0x101000u);
    EXPECT_EQ(trace[1].addr, 0u); // ALU records carry no address
    EXPECT_EQ(trace[2].addr, 0x102000u);
    EXPECT_EQ(trace[0].pc, pc0 + 0x400);

    rotateTrace(trace, 1);
    EXPECT_EQ(trace[0].op, OpClass::IntAlu);
    EXPECT_EQ(trace[2].addr, 0x101000u);
    rotateTrace(trace, 3); // full cycle: no-op
    EXPECT_EQ(trace[0].op, OpClass::IntAlu);
}

} // namespace
} // namespace cac
