/**
 * @file
 * Scenario replay equivalence: the same mix must produce identical
 * per-cell and per-program statistics at any thread count and for
 * streamed (chunked) vs in-memory (whole-segment) replay — the same
 * contract the engine already guarantees for plain trace workloads —
 * plus the attribution and switch-policy invariants.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/registry.hh"
#include "core/sim_target.hh"
#include "core/sweep.hh"
#include "scenario/scenario.hh"

namespace cac
{
namespace
{

constexpr const char *kMix = "mix:swim+tomcatv@q=5k,n=20k";

void
expectStatsEq(const CacheStats &a, const CacheStats &b)
{
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.loadMisses, b.loadMisses);
    EXPECT_EQ(a.storeMisses, b.storeMisses);
    EXPECT_EQ(a.fills, b.fills);
    EXPECT_EQ(a.evictions, b.evictions);
}

void
expectCellsEq(const std::vector<SweepCell> &a,
              const std::vector<SweepCell> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].org, b[i].org);
        expectStatsEq(a[i].stats, b[i].stats);
        ASSERT_EQ(a[i].programs.size(), b[i].programs.size());
        for (std::size_t p = 0; p < a[i].programs.size(); ++p) {
            EXPECT_EQ(a[i].programs[p].name, b[i].programs[p].name);
            EXPECT_EQ(a[i].programs[p].records,
                      b[i].programs[p].records);
            expectStatsEq(a[i].programs[p].l1, b[i].programs[p].l1);
        }
    }
}

std::vector<SweepCell>
runGrid(std::shared_ptr<const Scenario> scenario, unsigned threads,
        std::size_t chunk_records)
{
    SweepRunner sweep(threads);
    // Every target kind on the grid: functional caches, a hierarchy
    // and the CPU stack all replay the same composed stream.
    sweep.addOrgs({"a2", "a2-Hp-Sk", "victim", "2lvl:a2/a4",
                   "cpu:a2-Hp-Sk"});
    sweep.addScenarioWorkload(scenario->name(), scenario,
                              chunk_records);
    return sweep.run();
}

TEST(ScenarioDeterminism, ThreadCountInvariant)
{
    const auto scenario = buildScenario(kMix);
    const auto serial = runGrid(scenario, 1, 0);
    const auto parallel = runGrid(scenario, 4, 0);
    expectCellsEq(serial, parallel);
}

TEST(ScenarioDeterminism, StreamedMatchesInMemory)
{
    const auto scenario = buildScenario(kMix);
    const auto whole = runGrid(scenario, 2, 0);
    const auto chunked = runGrid(scenario, 2, 997); // awkward chunk
    expectCellsEq(whole, chunked);
}

TEST(ScenarioDeterminism, ChunkSizeInvariantReplay)
{
    const auto scenario = buildScenario(kMix);
    OrgSpec spec;
    CacheTarget whole(makeOrganization("a2-Hp-Sk", spec));
    const ScenarioResult a = scenario->replayInto(whole);
    CacheTarget chunked(makeOrganization("a2-Hp-Sk", spec));
    const ScenarioResult b = scenario->replayInto(chunked, 313);
    ASSERT_EQ(a.programs.size(), b.programs.size());
    for (std::size_t i = 0; i < a.programs.size(); ++i) {
        EXPECT_EQ(a.programs[i].records, b.programs[i].records);
        expectStatsEq(a.programs[i].l1, b.programs[i].l1);
    }
    EXPECT_EQ(a.switches, b.switches);
}

TEST(ScenarioAttribution, ProgramsSumToAggregate)
{
    const auto scenario = buildScenario(kMix);
    OrgSpec spec;
    CacheTarget target(makeOrganization("a2", spec));
    const ScenarioResult result = scenario->replayInto(target);
    target.finish();

    const CacheStats total = target.stats().l1;
    CacheStats sum;
    std::uint64_t records = 0;
    for (const ScenarioProgramStats &p : result.programs) {
        sum.loads += p.l1.loads;
        sum.stores += p.l1.stores;
        sum.loadMisses += p.l1.loadMisses;
        sum.storeMisses += p.l1.storeMisses;
        records += p.records;
    }
    EXPECT_EQ(records, scenario->composed().size());
    EXPECT_EQ(sum.loads, total.loads);
    EXPECT_EQ(sum.stores, total.stores);
    EXPECT_EQ(sum.loadMisses, total.loadMisses);
    EXPECT_EQ(sum.storeMisses, total.storeMisses);
    EXPECT_EQ(result.switches, scenario->numSwitches());
    EXPECT_EQ(result.flushes, 0u); // warm-keep
}

TEST(ScenarioPolicy, ColdFlushCostsMisses)
{
    const auto keep = buildScenario(kMix);
    const auto flush = buildScenario(std::string(kMix) + ",flush");
    OrgSpec spec;
    CacheTarget keep_target(makeOrganization("a2-Hp-Sk", spec));
    keep->replayInto(keep_target);
    keep_target.finish();
    CacheTarget flush_target(makeOrganization("a2-Hp-Sk", spec));
    const ScenarioResult result = flush->replayInto(flush_target);
    flush_target.finish();

    EXPECT_EQ(result.flushes, flush->numSwitches());
    // Identical reference streams, so the access counts agree and the
    // flushed run can only add (cold) misses on a scheme that keeps
    // conflicts low; the skewed I-Poly qualifies.
    EXPECT_EQ(keep_target.stats().l1.accesses(),
              flush_target.stats().l1.accesses());
    EXPECT_GE(flush_target.stats().l1.misses(),
              keep_target.stats().l1.misses());
}

TEST(ScenarioPlacement, SkewedPolyBeatsConventionalOnConflictMix)
{
    // The paper's per-program story must survive multiprogramming:
    // swim+tomcatv thrash a conventional 2-way cache but not the
    // skewed I-Poly placement.
    const auto scenario = buildScenario(kMix);
    OrgSpec spec;
    CacheTarget conventional(makeOrganization("a2", spec));
    scenario->replayInto(conventional);
    conventional.finish();
    CacheTarget skewed(makeOrganization("a2-Hp-Sk", spec));
    scenario->replayInto(skewed);
    skewed.finish();
    EXPECT_LT(skewed.stats().l1.missRatio(),
              0.5 * conventional.stats().l1.missRatio());
}

} // namespace
} // namespace cac
