/**
 * @file
 * Tests for the access-pattern emitters underlying the proxies.
 */

#include <set>

#include <gtest/gtest.h>

#include "workloads/patterns.hh"
#include "workloads/stride.hh"

namespace cac
{
namespace
{

using namespace patterns;

TEST(ArrayArena, AlignmentAndOffset)
{
    ArrayArena arena(1 << 20);
    const std::uint64_t a = arena.alloc(100, 4096);
    EXPECT_EQ(a % 4096, 0u);
    const std::uint64_t b = arena.alloc(100, 4096);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GT(b, a);
    const std::uint64_t c = arena.alloc(64, 32, 32 * 3);
    EXPECT_EQ(c % 32, 0u);
    EXPECT_EQ((c / 32) % 2, 1u); // odd block offset
}

TEST(Patterns, StreamSweepWalksAllArraysInLockstep)
{
    Trace t;
    TraceBuilder b(t);
    PhaseCursor cur;
    PatternConfig cfg;
    streamSweep(b, {0x1000, 0x2000}, 64, 8, cur, cfg);
    // Per iteration: 2 loads + computeOps(2) + store + alu + branch.
    std::size_t loads = 0, stores = 0, branches = 0;
    for (const auto &rec : t) {
        loads += rec.op == OpClass::Load;
        stores += rec.op == OpClass::Store;
        branches += rec.op == OpClass::Branch;
    }
    EXPECT_EQ(loads, 16u);
    EXPECT_EQ(stores, 8u);
    EXPECT_EQ(branches, 8u);
    EXPECT_EQ(t[0].addr, 0x1000u);
    EXPECT_EQ(t[1].addr, 0x2000u);
}

TEST(Patterns, CursorResumesAcrossCalls)
{
    Trace t;
    TraceBuilder b(t);
    PhaseCursor cur;
    PatternConfig cfg;
    streamSweep(b, {0x1000}, 100, 4, cur, cfg);
    const std::size_t first_chunk = t.size();
    streamSweep(b, {0x1000}, 100, 4, cur, cfg);
    // The 5th iteration must continue at element 4, not restart at 0.
    EXPECT_EQ(t[first_chunk].addr, 0x1000u + 4 * 8);
}

TEST(Patterns, CursorWrapsAtTotalElems)
{
    Trace t;
    TraceBuilder b(t);
    PhaseCursor cur;
    PatternConfig cfg;
    streamSweep(b, {0x1000}, 4, 6, cur, cfg);
    // Elements: 0,1,2,3,0,1
    std::vector<std::uint64_t> loads;
    for (const auto &rec : t)
        if (rec.op == OpClass::Load)
            loads.push_back(rec.addr);
    ASSERT_EQ(loads.size(), 6u);
    EXPECT_EQ(loads[4], 0x1000u);
    EXPECT_EQ(loads[5], 0x1008u);
}

TEST(Patterns, StridedSweepUsesStride)
{
    Trace t;
    TraceBuilder b(t);
    PhaseCursor cur;
    PatternConfig cfg;
    stridedSweep(b, {0x10000}, 8, 4096, 3, cur, cfg);
    std::vector<std::uint64_t> loads;
    for (const auto &rec : t)
        if (rec.op == OpClass::Load)
            loads.push_back(rec.addr);
    EXPECT_EQ(loads[1] - loads[0], 4096u);
    EXPECT_EQ(loads[2] - loads[1], 4096u);
}

TEST(Patterns, StencilTouchesThreePoints)
{
    Trace t;
    TraceBuilder b(t);
    PhaseCursor cur;
    PatternConfig cfg;
    stencilSweep(b, {0x10000}, 16, 8, 1, cur, cfg);
    std::vector<std::uint64_t> loads;
    for (const auto &rec : t)
        if (rec.op == OpClass::Load)
            loads.push_back(rec.addr);
    ASSERT_EQ(loads.size(), 3u);
    EXPECT_EQ(loads[0], 0x10000u);      // i-1 with i=1
    EXPECT_EQ(loads[1], 0x10000u + 8);  // i
    EXPECT_EQ(loads[2], 0x10000u + 16); // i+1
}

TEST(Patterns, StencilInterleaveOrders)
{
    PatternConfig by_array;
    PatternConfig by_point;
    by_point.interleaveByPoint = true;

    Trace ta, tp;
    {
        TraceBuilder b(ta);
        PhaseCursor cur;
        stencilSweep(b, {0x10000, 0x20000}, 16, 8, 1, cur, by_array);
    }
    {
        TraceBuilder b(tp);
        PhaseCursor cur;
        stencilSweep(b, {0x10000, 0x20000}, 16, 8, 1, cur, by_point);
    }
    auto loadAddrs = [](const Trace &t) {
        std::vector<std::uint64_t> v;
        for (const auto &rec : t)
            if (rec.op == OpClass::Load)
                v.push_back(rec.addr);
        return v;
    };
    auto a = loadAddrs(ta), p = loadAddrs(tp);
    ASSERT_EQ(a.size(), 6u);
    ASSERT_EQ(p.size(), 6u);
    // By-array: a0.p0 a0.p1 a0.p2 a1.p0 ...; by-point: a0.p0 a1.p0 ...
    EXPECT_EQ(a[1], 0x10000u + 8);
    EXPECT_EQ(p[1], 0x20000u);
}

TEST(Patterns, RandomAccessStaysInRegion)
{
    Trace t;
    TraceBuilder b(t);
    Rng rng(1);
    PatternConfig cfg;
    randomAccess(b, rng, 0x40000, 4096, 200, cfg);
    for (const auto &rec : t) {
        if (rec.op == OpClass::Load || rec.op == OpClass::Store) {
            EXPECT_GE(rec.addr, 0x40000u);
            EXPECT_LT(rec.addr, 0x41000u);
        }
    }
}

TEST(Patterns, ChaseCycleIsSingleCycle)
{
    Rng rng(2);
    auto next = makeChaseCycle(rng, 64);
    // Following next from node 0 must visit all 64 nodes then return.
    std::set<std::uint32_t> visited;
    std::uint32_t cur = 0;
    for (int i = 0; i < 64; ++i) {
        EXPECT_TRUE(visited.insert(cur).second);
        cur = next[cur];
    }
    EXPECT_EQ(cur, 0u);
}

TEST(Patterns, PointerChaseSerializesThroughR28)
{
    Trace t;
    TraceBuilder b(t);
    Rng rng(3);
    auto cycle = makeChaseCycle(rng, 16);
    PhaseCursor cur;
    PatternConfig cfg;
    pointerChase(b, cycle, 0x50000, 64, 8, cur, cfg);
    // Every next-pointer load reads and writes r28 (the chain).
    std::size_t chain_loads = 0;
    for (const auto &rec : t) {
        if (rec.op == OpClass::Load && rec.dst == reg::r(28)) {
            EXPECT_EQ(rec.src1, reg::r(28));
            ++chain_loads;
        }
    }
    EXPECT_EQ(chain_loads, 8u);
}

TEST(Patterns, BranchyWorkEmitsDecisionBranches)
{
    Trace t;
    TraceBuilder b(t);
    Rng rng(4);
    PatternConfig cfg;
    branchyWork(b, rng, 0x60000, 4096, 100, 0.4, cfg);
    std::size_t branches = 0, taken = 0;
    for (const auto &rec : t) {
        if (rec.op == OpClass::Branch) {
            ++branches;
            taken += rec.taken;
        }
    }
    EXPECT_EQ(branches, 200u); // decision + loop per iteration
    EXPECT_GT(taken, 100u);    // loop branches nearly always taken
    EXPECT_LT(taken, 180u);    // decision branches only ~40%
}

TEST(StrideWorkload, GeneratesExpectedSequence)
{
    StrideWorkloadConfig cfg;
    cfg.numElements = 4;
    cfg.stride = 3;
    cfg.sweeps = 2;
    cfg.base = 0x1000;
    auto addrs = makeStrideAddressTrace(cfg);
    ASSERT_EQ(addrs.size(), 8u);
    EXPECT_EQ(addrs[0], 0x1000u);
    EXPECT_EQ(addrs[1], 0x1000u + 24);
    EXPECT_EQ(addrs[4], 0x1000u); // second sweep restarts
}

} // anonymous namespace
} // namespace cac
