/**
 * @file
 * Tests for the Spec95 workload proxies, including the calibration
 * properties the Table 2/3 reproduction depends on.
 */

#include <gtest/gtest.h>

#include "cache/set_assoc.hh"
#include "core/experiment.hh"
#include "core/organization.hh"
#include "workloads/spec_proxy.hh"

namespace cac
{
namespace
{

double
loadMissPct(const std::string &label, const Trace &t)
{
    OrgSpec spec;
    spec.writeAllocate = false;
    auto cache = makeOrganization(label, spec);
    return runTraceMemory(*cache, t).loadMissRatio() * 100.0;
}

TEST(SpecProxy, ListHasEighteenPrograms)
{
    EXPECT_EQ(specProxyList().size(), 18u);
}

TEST(SpecProxy, ExactlyThreeHighConflictPrograms)
{
    unsigned bad = 0;
    for (const auto &info : specProxyList())
        bad += info.highConflict;
    EXPECT_EQ(bad, 3u);
    EXPECT_TRUE(specProxyInfo("tomcatv").highConflict);
    EXPECT_TRUE(specProxyInfo("swim").highConflict);
    EXPECT_TRUE(specProxyInfo("wave5").highConflict);
}

TEST(SpecProxy, TenFpEightInt)
{
    unsigned fp = 0;
    for (const auto &info : specProxyList())
        fp += info.isFp;
    EXPECT_EQ(fp, 10u);
}

TEST(SpecProxy, BuildsApproximatelyTargetLength)
{
    for (const char *name : {"go", "swim", "fpppp"}) {
        Trace t = buildSpecProxy(name, 50000);
        EXPECT_GE(t.size(), 50000u);
        EXPECT_LT(t.size(), 75000u) << name;
    }
}

TEST(SpecProxy, DeterministicPerSeed)
{
    Trace a = buildSpecProxy("gcc", 20000, 3);
    Trace b = buildSpecProxy("gcc", 20000, 3);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(a[i].op, b[i].op);
    }
}

TEST(SpecProxy, SeedChangesRandomizedProxies)
{
    Trace a = buildSpecProxy("compress", 20000, 1);
    Trace b = buildSpecProxy("compress", 20000, 2);
    bool differs = a.size() != b.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].addr != b[i].addr;
    EXPECT_TRUE(differs);
}

TEST(SpecProxyDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)buildSpecProxy("doom", 1000),
                ::testing::ExitedWithCode(1), "unknown");
}

TEST(SpecProxy, InstructionMixIsPlausible)
{
    for (const auto &info : specProxyList()) {
        Trace t = buildSpecProxy(info.name, 40000);
        std::size_t loads = 0, stores = 0, branches = 0, fp = 0;
        for (const auto &rec : t) {
            loads += rec.op == OpClass::Load;
            stores += rec.op == OpClass::Store;
            branches += rec.op == OpClass::Branch;
            fp += isFpOp(rec.op);
        }
        const double n = static_cast<double>(t.size());
        EXPECT_GT(loads / n, 0.10) << info.name;
        EXPECT_LT(loads / n, 0.60) << info.name;
        EXPECT_GT(branches / n, 0.02) << info.name;
        EXPECT_LT(branches / n, 0.40) << info.name;
        if (info.isFp)
            EXPECT_GT(fp / n, 0.15) << info.name;
        else
            EXPECT_LT(fp / n, 0.05) << info.name;
        EXPECT_LT(stores / n, 0.30) << info.name;
    }
}

/**
 * The calibration property behind Tables 2-3: the three bad programs
 * must thrash a conventional 8KB 2-way cache and be largely fixed by
 * skewed I-Poly placement; the other fifteen must be placement
 * insensitive.
 */
class SpecProxyCalibration
    : public ::testing::TestWithParam<SpecProxyInfo>
{
};

TEST_P(SpecProxyCalibration, ConflictBehaviourMatchesPaperCategory)
{
    const SpecProxyInfo &info = GetParam();
    Trace t = buildSpecProxy(info.name, 120000);
    const double conv = loadMissPct("a2", t);
    const double poly = loadMissPct("a2-Hp-Sk", t);

    if (info.highConflict) {
        EXPECT_GT(conv, 35.0) << info.name;
        EXPECT_LT(poly, conv / 2.0) << info.name;
        EXPECT_LT(poly, 25.0) << info.name;
    } else {
        // Placement-insensitive: the schemes agree within a few points.
        EXPECT_LT(conv, 25.0) << info.name;
        EXPECT_LT(std::abs(conv - poly), 5.0) << info.name;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllProxies, SpecProxyCalibration,
    ::testing::ValuesIn(specProxyList()),
    [](const ::testing::TestParamInfo<SpecProxyInfo> &info) {
        return info.param.name;
    });

TEST(SpecProxy, BadProgramsApproachFullyAssociativeUnderIPoly)
{
    // Section 2.1's headline: I-Poly indexing comes close to a
    // fully-associative cache of the same capacity.
    for (const char *name : {"tomcatv", "swim"}) {
        Trace t = buildSpecProxy(name, 120000);
        const double poly = loadMissPct("a2-Hp-Sk", t);
        const double full = loadMissPct("full", t);
        EXPECT_LT(poly, full + 8.0) << name;
    }
}

} // anonymous namespace
} // namespace cac
