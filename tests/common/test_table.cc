/**
 * @file
 * Unit tests for the text-table renderer.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace cac
{
namespace
{

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t;
    t.header({"name", "ipc"});
    t.beginRow();
    t.cell("swim");
    t.cell(1.53, 2);
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("swim"), std::string::npos);
    EXPECT_NE(out.find("1.53"), std::string::npos);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.header({"a", "b"});
    t.beginRow();
    t.cell("longer-name");
    t.cell("x");
    std::string out = t.render();
    // Header row must be padded at least as wide as the longest cell.
    auto first_line_len = out.find('\n');
    ASSERT_NE(first_line_len, std::string::npos);
    EXPECT_GE(first_line_len, std::string("longer-name").size());
}

TEST(TextTable, NumericPrecision)
{
    TextTable t;
    t.beginRow();
    t.cell(3.14159, 3);
    t.cell(static_cast<long long>(42));
    std::string out = t.render();
    EXPECT_NE(out.find("3.142"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(TextTable, SeparatorEmitsRule)
{
    TextTable t;
    t.header({"x"});
    t.beginRow();
    t.cell("a");
    t.separator();
    t.beginRow();
    t.cell("b");
    std::string out = t.render();
    // Two rules: one under the header, one at the separator.
    std::size_t dashes = 0, pos = 0;
    while ((pos = out.find("---", pos)) != std::string::npos) {
        ++dashes;
        pos = out.find('\n', pos);
    }
    EXPECT_EQ(dashes, 2u);
}

} // anonymous namespace
} // namespace cac
