/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace cac
{
namespace
{

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, MatchesClosedForm)
{
    RunningStat s;
    const double xs[] = {1.0, 2.0, 3.0, 4.0, 5.0};
    for (double x : xs)
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 2.0); // population variance
    EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.0));
    EXPECT_EQ(s.min(), 1.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStat, StableForLargeOffsets)
{
    // Welford should not lose precision with a big common offset.
    RunningStat s;
    for (int i = 0; i < 1000; ++i)
        s.add(1e9 + (i % 2));
    EXPECT_NEAR(s.variance(), 0.25, 1e-6);
}

TEST(Means, ArithmeticMean)
{
    EXPECT_EQ(arithmeticMean({}), 0.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({2.0, 4.0, 6.0}), 4.0);
}

TEST(Means, GeometricMean)
{
    EXPECT_EQ(geometricMean({}), 0.0);
    EXPECT_NEAR(geometricMean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    // geo mean <= arith mean (AM-GM)
    std::vector<double> xs = {1.1, 0.9, 2.3, 1.7};
    EXPECT_LE(geometricMean(xs), arithmeticMean(xs));
}

TEST(Means, PopulationStddev)
{
    EXPECT_EQ(populationStddev({1.0}), 0.0);
    EXPECT_DOUBLE_EQ(populationStddev({1.0, 3.0}), 1.0);
}

TEST(Histogram, BinsAndEdges)
{
    Histogram h(0.0, 1.0, 10);
    EXPECT_EQ(h.numBins(), 10u);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 0.1);
    EXPECT_DOUBLE_EQ(h.binLo(9), 0.9);
}

TEST(Histogram, AddPlacesSamples)
{
    Histogram h(0.0, 1.0, 10);
    h.add(0.05); // bin 0
    h.add(0.15); // bin 1
    h.add(0.95); // bin 9
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 1.0, 4);
    h.add(-1.0); // clamps to bin 0
    h.add(2.0);  // clamps to last bin
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(3), 1u);
}

TEST(Histogram, CountAtLeast)
{
    Histogram h(0.0, 1.0, 10);
    for (double x : {0.05, 0.55, 0.65, 0.95})
        h.add(x);
    EXPECT_EQ(h.countAtLeast(0.5), 3u);
    EXPECT_EQ(h.countAtLeast(0.9), 1u);
    EXPECT_EQ(h.countAtLeast(0.0), 4u);
}

TEST(Histogram, RenderContainsCounts)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    h.add(0.9);
    std::string out = h.render("test");
    EXPECT_NE(out.find("test"), std::string::npos);
    EXPECT_NE(out.find("2 samples"), std::string::npos);
}

} // anonymous namespace
} // namespace cac
