/**
 * @file
 * Unit tests for the deterministic xorshift* generator.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace cac
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Rng, ZeroSeedIsRemapped)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u); // xorshift with zero state sticks at zero
}

TEST(Rng, ReseedReproduces)
{
    Rng r(7);
    std::uint64_t first = r.next();
    r.seed(7);
    EXPECT_EQ(r.next(), first);
}

TEST(Rng, NextBelowStaysInRange)
{
    Rng r(3);
    for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversSmallRange)
{
    Rng r(5);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.nextBelow(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf)
{
    Rng r(13);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(17);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-1.0));
        EXPECT_TRUE(r.chance(2.0));
    }
}

TEST(Rng, ChanceTracksProbability)
{
    Rng r(19);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

} // anonymous namespace
} // namespace cac
