/**
 * @file
 * Unit tests for the bit-manipulation helpers.
 */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace cac
{
namespace
{

TEST(Bits, IsPowerOf2RecognizesPowers)
{
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_TRUE(isPowerOf2(std::uint64_t{1} << i)) << i;
}

TEST(Bits, IsPowerOf2RejectsZero)
{
    EXPECT_FALSE(isPowerOf2(0));
}

TEST(Bits, IsPowerOf2RejectsComposites)
{
    for (std::uint64_t x : {3ull, 5ull, 6ull, 7ull, 12ull, 1023ull,
                            (1ull << 40) + 1}) {
        EXPECT_FALSE(isPowerOf2(x)) << x;
    }
}

TEST(Bits, FloorLog2ExactPowers)
{
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_EQ(floorLog2(std::uint64_t{1} << i), i);
}

TEST(Bits, FloorLog2Intermediate)
{
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(5), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1025), 10u);
}

TEST(Bits, CeilLog2)
{
    EXPECT_EQ(ceilLog2(0), 0u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1 << 20), 20u);
    EXPECT_EQ(ceilLog2((1 << 20) + 1), 21u);
}

TEST(Bits, MaskWidths)
{
    EXPECT_EQ(mask(0), 0u);
    EXPECT_EQ(mask(1), 1u);
    EXPECT_EQ(mask(8), 0xFFu);
    EXPECT_EQ(mask(32), 0xFFFFFFFFull);
    EXPECT_EQ(mask(64), ~std::uint64_t{0});
}

TEST(Bits, ExtractFields)
{
    const std::uint64_t v = 0xDEADBEEFCAFEF00Dull;
    EXPECT_EQ(bits(v, 0, 4), 0xDull);
    EXPECT_EQ(bits(v, 4, 8), 0x00ull);
    EXPECT_EQ(bits(v, 32, 16), 0xBEEFull);
    EXPECT_EQ(bits(v, 48, 16), 0xDEADull);
    EXPECT_EQ(bits(v, 0, 64), v);
}

TEST(Bits, ExtractBeyondWordIsZero)
{
    EXPECT_EQ(bits(0xFFFF, 64, 4), 0u);
    EXPECT_EQ(bits(0xFFFF, 100, 4), 0u);
}

TEST(Bits, PopCount)
{
    EXPECT_EQ(popCount(0), 0u);
    EXPECT_EQ(popCount(1), 1u);
    EXPECT_EQ(popCount(0xFF), 8u);
    EXPECT_EQ(popCount(~std::uint64_t{0}), 64u);
    EXPECT_EQ(popCount(0x5555555555555555ull), 32u);
}

TEST(Bits, ParityMatchesPopcountLsb)
{
    std::uint64_t x = 0x123456789ABCDEFull;
    for (int i = 0; i < 64; ++i) {
        EXPECT_EQ(parity(x), popCount(x) & 1u);
        x = x * 6364136223846793005ull + 1442695040888963407ull;
    }
}

TEST(Bits, MsbIndex)
{
    EXPECT_EQ(msbIndex(1), 0u);
    EXPECT_EQ(msbIndex(0x80), 7u);
    EXPECT_EQ(msbIndex(0x80000000ull), 31u);
    EXPECT_EQ(msbIndex(~std::uint64_t{0}), 63u);
}

} // anonymous namespace
} // namespace cac
