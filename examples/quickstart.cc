/**
 * @file
 * Quickstart: build a conflict-avoiding (I-Poly) cache, hit it with a
 * pathological power-of-two stride, and compare against a conventional
 * cache of identical geometry.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/cac.hh"

int
main()
{
    using namespace cac;

    // --- 1. Two 8KB 2-way caches differing only in placement. -------
    OrgSpec spec;                       // 8KB, 32B lines, 2 ways
    auto conventional = makeOrganization("a2", spec);
    auto ipoly = makeOrganization("a2-Hp-Sk", spec);

    // --- 2. A classic pathological pattern: a vector whose elements
    //        are 4KB apart (every element lands in one conventional
    //        set, as in section 2 of the paper). ----------------------
    StrideWorkloadConfig workload;
    workload.stride = 512;              // 512 * 8B = 4KB between elements
    workload.numElements = 64;
    workload.sweeps = 64;
    const auto addresses = makeStrideAddressTrace(workload);

    runAddressStream(*conventional, addresses);
    runAddressStream(*ipoly, addresses);

    std::printf("workload: 64 elements, 4KB apart, 64 sweeps\n\n");
    std::printf("  %-28s miss ratio %5.1f%%\n",
                conventional->name().c_str(),
                100.0 * conventional->stats().missRatio());
    std::printf("  %-28s miss ratio %5.1f%%\n\n", ipoly->name().c_str(),
                100.0 * ipoly->stats().missRatio());

    // --- 3. Look inside: the index function is just XOR gates. ------
    IPolyIndex index(7, 2, 14, /*skewed=*/true);
    std::printf("the I-Poly hardware for way 0 (one XOR tree per index "
                "bit):\n%s\n",
                index.matrix(0).describe().c_str());

    // --- 4. And the placement theory in action: a 2^k stride maps
    //        every window of 128 consecutive elements to 128 distinct
    //        sets (section 2.1.2). ----------------------------------
    std::printf("set indices of the first 8 elements under I-Poly: ");
    for (std::uint64_t i = 0; i < 8; ++i) {
        std::printf("%llu ",
                    static_cast<unsigned long long>(index.index(
                        (workload.base + i * 4096) >> 5, 0)));
    }
    std::printf("\n(conventional indexing sends all of them to set %llu)\n",
                static_cast<unsigned long long>((workload.base >> 5)
                                                & 127));
    return 0;
}
