/**
 * @file
 * Scientific-computing scenario from the paper's conclusions: loop
 * tiling.
 *
 * "Tiling often introduces additional conflict misses which depend on
 * array dimensions as well as stride. An I-Poly cache would, for
 * example, eliminate the need to compute conflict-free tile
 * dimensions."
 *
 * This example walks a tiled 2D array (column-major, power-of-two
 * leading dimension — the worst case) for a range of tile heights and
 * shows that the conventional cache's miss ratio swings wildly with
 * the tile shape while the I-Poly cache is uniformly low, so the
 * programmer can pick tile sizes for capacity alone.
 */

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/cac.hh"

namespace
{

/**
 * Generate the addresses of one tiled pass over a rows x cols array of
 * 8-byte elements with leading dimension @p ld elements: for each tile,
 * touch it column by column, twice (typical read-modify-write reuse).
 */
std::vector<std::uint64_t>
tiledTraversal(std::size_t rows, std::size_t cols, std::size_t ld,
               std::size_t tile_rows, std::size_t tile_cols)
{
    std::vector<std::uint64_t> addrs;
    const std::uint64_t base = 1 << 22;
    for (std::size_t tr = 0; tr < rows; tr += tile_rows) {
        for (std::size_t tc = 0; tc < cols; tc += tile_cols) {
            for (int pass = 0; pass < 2; ++pass) {
                for (std::size_t c = tc;
                     c < std::min(tc + tile_cols, cols); ++c) {
                    for (std::size_t r = tr;
                         r < std::min(tr + tile_rows, rows); ++r) {
                        addrs.push_back(base + (c * ld + r) * 8);
                    }
                }
            }
        }
    }
    return addrs;
}

} // anonymous namespace

int
main()
{
    using namespace cac;

    // 512x512 doubles, leading dimension 512 (power of two: columns
    // are 4KB apart, conflicting in a conventional 8KB 2-way cache).
    constexpr std::size_t kRows = 512, kCols = 512, kLd = 512;

    std::printf("tiled traversal of a %zux%zu double array "
                "(columns 4KB apart at ld=512)\n\n",
                kRows, kCols);

    const std::vector<std::size_t> kTileRows = {8, 16, 32, 64};
    const std::vector<std::size_t> kTileCols = {8, 16, 32};

    // Two engine sweeps over the 12 tile shapes: both organizations at
    // the pathological ld=512, and the conventional cache again with
    // one-block padding (ld=516) — the manual fix I-Poly makes moot.
    auto makeSweep = [&](std::size_t ld) {
        SweepRunner sweep(std::thread::hardware_concurrency());
        for (std::size_t tile_rows : kTileRows) {
            for (std::size_t tile_cols : kTileCols) {
                sweep.addAddressWorkload(
                    std::to_string(tile_rows) + "x"
                        + std::to_string(tile_cols),
                    [=] {
                        return tiledTraversal(kRows, kCols, ld,
                                              tile_rows, tile_cols);
                    });
            }
        }
        return sweep;
    };

    SweepRunner unpadded = makeSweep(kLd);
    unpadded.addOrgs({"a2", "a2-Hp-Sk"});
    SweepRunner padded = makeSweep(kLd + 4);
    padded.addOrg("a2");

    const auto unpadded_cells = unpadded.run();
    const auto padded_cells = padded.run();

    TextTable table;
    table.header({"tile (r x c)", "footprint", "a2 ld=512",
                  "a2 ld=516 (padded)", "Hp-Sk ld=512"});

    for (std::size_t w = 0; w < unpadded.numWorkloads(); ++w) {
        const std::size_t tile_rows = kTileRows[w / kTileCols.size()];
        const std::size_t tile_cols = kTileCols[w % kTileCols.size()];
        char tile[32], foot[32];
        std::snprintf(tile, sizeof(tile), "%zu x %zu", tile_rows,
                      tile_cols);
        std::snprintf(foot, sizeof(foot), "%zuKB",
                      tile_rows * tile_cols * 8 / 1024);
        table.beginRow();
        table.cell(std::string(tile));
        table.cell(std::string(foot));
        table.cell(100.0 * unpadded_cells[w * 2].stats.missRatio(), 1);
        table.cell(100.0 * padded_cells[w].stats.missRatio(), 1);
        table.cell(100.0 * unpadded_cells[w * 2 + 1].stats.missRatio(),
                   1);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("takeaway: with a power-of-two leading dimension the "
                "conventional cache gets *no* tiling reuse\n"
                "for any tile shape (25%% = the no-reuse floor), and "
                "even one-block padding (ld=516) only\n"
                "rescues flat tiles. The I-Poly cache delivers the "
                "reuse at ld=512 for every tile that fits --\n"
                "no conflict-aware padding or tile-dimension "
                "computation needed (the paper's conclusion).\n");
    return 0;
}
