/**
 * @file
 * Building the paper's two-level virtual-real hierarchy (section 3)
 * with the public API: a virtually-indexed skewed I-Poly L1 over a
 * physically-indexed conventional L2, with explicit Inclusion and hole
 * accounting, plus an external (snooped) invalidation.
 */

#include <cstdio>

#include "core/cac.hh"

int
main()
{
    using namespace cac;

    // --- 1. Assemble the hierarchy. ----------------------------------
    const CacheGeometry l1_geom(8 * 1024, 32, 2);
    auto l1 = std::make_unique<SetAssocCache>(
        l1_geom,
        makeIndexFn(IndexKind::IPolySkew, l1_geom.setBits(),
                    l1_geom.ways(), /*input_bits=*/14));

    const CacheGeometry l2_geom(256 * 1024, 32, 2);
    auto l2 = std::make_unique<SetAssocCache>(
        l2_geom,
        makeIndexFn(IndexKind::Modulo, l2_geom.setBits(),
                    l2_geom.ways()));

    TwoLevelHierarchy hierarchy(std::move(l1), std::move(l2),
                                PageMap(/*page_bytes=*/4096));

    std::printf("L1: %s (virtually indexed)\n",
                hierarchy.l1().name().c_str());
    std::printf("L2: %s (physically indexed)\n\n",
                hierarchy.l2().name().c_str());

    // --- 2. Drive it with a workload whose footprint exceeds L2. -----
    Trace trace = buildSpecProxy("gcc", 200000);
    std::uint64_t loads = 0, hits = 0;
    for (const auto &rec : trace) {
        if (rec.op == OpClass::Load) {
            ++loads;
            hits += hierarchy.access(rec.addr, false);
        } else if (rec.op == OpClass::Store) {
            hierarchy.access(rec.addr, true);
        }
    }

    const HoleStats &holes = hierarchy.holeStats();
    std::printf("loads %llu, L1 hit ratio %.2f%%\n",
                static_cast<unsigned long long>(loads),
                100.0 * static_cast<double>(hits)
                    / static_cast<double>(loads));
    std::printf("L1 misses %llu, L2 misses %llu\n",
                static_cast<unsigned long long>(holes.l1Misses),
                static_cast<unsigned long long>(holes.l2Misses));
    std::printf("inclusion invalidations %llu -> holes %llu "
                "(%.3f%% of L2 misses), refills %llu\n",
                static_cast<unsigned long long>(
                    holes.inclusionInvalidates),
                static_cast<unsigned long long>(holes.holesCreated),
                100.0 * holes.holesPerL2Miss(),
                static_cast<unsigned long long>(holes.holeRefills));

    // --- 3. Inclusion is an invariant, not an accident. --------------
    std::printf("inclusion check: %s\n",
                hierarchy.checkInclusion() ? "OK" : "VIOLATED");

    // --- 4. A snooped write from another processor arrives with a
    //        physical address; the reverse map shoots down L1. --------
    const std::uint64_t victim_vaddr = trace.front().addr;
    const std::uint64_t victim_paddr =
        hierarchy.pageMap().translate(victim_vaddr);
    hierarchy.externalInvalidate(victim_paddr);
    std::printf("after external invalidate of paddr 0x%llx: "
                "inclusion %s\n",
                static_cast<unsigned long long>(victim_paddr),
                hierarchy.checkInclusion() ? "OK" : "VIOLATED");

    // Compare against the closed-form hole model (section 3.3).
    HoleModel model = HoleModel::fromBlockCounts(
        l1_geom.numBlocks(), l2_geom.numBlocks());
    std::printf("\nanalytic P_H for this shape: %.4f "
                "(model assumes DM levels and uncorrelated indices)\n",
                model.holePerL2Miss());
    return 0;
}
