/**
 * @file
 * Real-time scenario from the paper's conclusions:
 *
 * "The use of caches in real-time systems is often problematic when it
 * cannot be guaranteed that pathological miss ratios will not occur.
 * If conflict misses are eliminated, the miss ratio depends solely on
 * compulsory and capacity misses, which in general are easier to
 * predict and control."
 *
 * A WCET analyst cares about the *worst case* over the input-dependent
 * layouts a task might see. This example runs one fixed loop kernel
 * over many possible array placements (as the linker/allocator might
 * produce) and reports the best/mean/worst miss ratio per indexing
 * scheme: conventional indexing has a long pathological tail, skewed
 * I-Poly clusters tightly around the capacity floor.
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "core/cac.hh"

namespace
{

/**
 * The task kernel: three arrays processed in lockstep (filter state,
 * input buffer, output buffer), several frames.
 */
std::vector<std::uint64_t>
taskAddresses(std::uint64_t base_a, std::uint64_t base_b,
              std::uint64_t base_c)
{
    std::vector<std::uint64_t> addrs;
    constexpr std::size_t kElems = 256; // 2KB per array (6KB total)
    for (int frame = 0; frame < 8; ++frame) {
        for (std::size_t i = 0; i < kElems; ++i) {
            addrs.push_back(base_a + i * 8);
            addrs.push_back(base_b + i * 8);
            addrs.push_back(base_c + i * 8);
        }
    }
    return addrs;
}

} // anonymous namespace

int
main()
{
    using namespace cac;

    std::printf("one DSP-style kernel, 256 random linker placements of "
                "its three 2KB arrays\n\n");

    const std::vector<std::string> schemes = {"a2", "a2-Hx-Sk", "a2-Hp",
                                              "a2-Hp-Sk", "full"};

    // Every scheme sees the same 256 placements: addresses the
    // allocator might choose — arbitrary 32B-aligned bases in a 1MB
    // segment (some will collide mod 4KB, some won't; the analyst
    // can't control which).
    SweepRunner sweep(std::thread::hardware_concurrency());
    sweep.addOrgs(schemes);
    Rng rng(2024);
    for (int placement = 0; placement < 256; ++placement) {
        const std::uint64_t a = (1 << 22) + (rng.nextBelow(1 << 15) << 5);
        const std::uint64_t b = (1 << 22) + (rng.nextBelow(1 << 15) << 5);
        const std::uint64_t c = (1 << 22) + (rng.nextBelow(1 << 15) << 5);
        sweep.addAddressWorkload(
            "placement-" + std::to_string(placement),
            [a, b, c] { return taskAddresses(a, b, c); });
    }
    const std::vector<SweepCell> cells = sweep.run();

    TextTable table;
    table.header({"scheme", "best miss%", "mean miss%", "worst miss%",
                  "stddev"});

    for (std::size_t s = 0; s < schemes.size(); ++s) {
        RunningStat stat;
        for (std::size_t w = 0; w < sweep.numWorkloads(); ++w) {
            stat.add(100.0
                     * cells[w * schemes.size() + s].stats.missRatio());
        }
        table.beginRow();
        table.cell(schemes[s]);
        table.cell(stat.min(), 2);
        table.cell(stat.mean(), 2);
        table.cell(stat.max(), 2);
        table.cell(stat.stddev(), 2);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("WCET bound must use the *worst* column: conventional "
                "indexing forces a pessimistic bound;\n"
                "I-Poly keeps the worst case near the capacity floor "
                "(the paper's predictability argument, section 5).\n");
    return 0;
}
